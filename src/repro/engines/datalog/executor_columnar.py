"""Columnar (NumPy) execution of :class:`RulePlan`\\ s.

The interpreted and compiled executors are *tuple at a time*: however the
loop nest is generated, every row still pays Python-level dispatch for key
assembly, guard checks and head projection.  This module changes the
**representation** instead — the same move the paper makes when lowering
declarative queries onto an efficient execution substrate: each level of the
join is a set of **column arrays** and every plan operation becomes one
vectorised kernel over whole levels.

* **Value dictionary.**  All values are mapped through one executor-wide
  :class:`ValueDict` into dense ``int64`` codes.  The dictionary is an
  ordinary Python dict, so code equality is *exactly* the engine's stored
  set/index-key semantics: ``1 == 1.0 == True`` collapse to one code, and
  two distinct NaN objects keep distinct codes while the same NaN object
  maps to one (tuple/dict hashing identity-shortcuts, ``==`` does not — the
  NULL/NaN semantics pinned for SQLite in PR 2 and by the kernel contract
  tests).  Store relations are encoded to columns once per version
  (:meth:`StoreBackend.data_version`) and cached; levels convert back to
  Python tuples only at the head projection, so both ``StoreBackend``\\ s
  work unchanged.

* **Joins.**  Each join step packs the probe-key code columns of both sides
  into one ``int64`` key (or joint dense group ids when the packed range
  would overflow), sorts the relation side once, and enumerates matches with
  two ``np.searchsorted`` sweeps plus ``np.repeat`` expansion — the
  factorize/searchsorted hash join over the plan's existing index key
  positions.  Constant/parameter key positions and the plan's
  ``eq_positions`` become boolean pre-masks on the relation columns.

* **Guards.**  Comparison checks are boolean masks (code equality for
  ``=``/``<>`` with a NaN correction; numeric kernels for orderings),
  ``=``-assignments materialise a new code column, and negation probes are
  one membership test (``np.isin`` over packed keys) per negated relation.

* **Aggregate tails** are grouped reductions: group keys factorize to dense
  group ids, and count/sum/min/max/avg reduce sorted segments via
  ``np.bincount`` / ``np.add.reduceat``-style kernels (``distinct`` dedups
  ``(group, value)`` pairs first) — subsuming the "compiled aggregate
  tails" follow-up.

**Fallback, two tiers.**  Shapes the lowering cannot vectorise — parameters
inside arithmetic (they defeat static column typing), negation or
comparison over a never-bound variable, ``collect`` (order-sensitive),
arithmetic negation keys or aggregate arguments — are rejected *statically*
per plan and permanently routed to the compiled executor
(``fallback_count``, mirroring the compiled executor's own counter).  Data
the kernels cannot handle *exactly* — mixed-dtype columns that defeat dtype
inference, integers beyond exact ``float64``/``int64`` range, a zero
divisor, NaN in ordered aggregates, ragged rows — raises
:class:`ColumnarFallback` at run time and the whole rule application is
re-run on the compiled executor (``runtime_fallback_count``); the
vectorised path never writes to the store, so the re-run is always safe and
reproduces the interpreter's exact result or error.  ``vectorised_count``
counts the applications that completed columnar, which is what the
differential corpus' coverage assertions read.

Executor selection threads ``DatalogEngine(..., executor="columnar")`` →
``Raqlet`` → the CLI's ``--executor columnar`` → the ``REPRO_EXECUTOR``
environment variable, exactly like PR 3's compiled executor.  Equivalence
with the other two executors is held by the 50-seed store differential and
32-seed IVM differential harnesses plus the Hypothesis kernel contracts in
``tests/engines/test_columnar_kernels.py``; plan lowerings are golden-
snapshot tested via :func:`describe_columnar_plan`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

try:  # NumPy is an optional extra (``repro[columnar]``)
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None  # type: ignore[assignment]

from repro.common.errors import ExecutionError
from repro.dlir.core import (
    ArithExpr,
    Const,
    Param,
    Rule,
    Term,
    Var,
    Wildcard,
    rule_param_names,
)
from repro.engines.datalog.evaluation import resolve_delta_view
from repro.engines.datalog.executor_compiled import CompiledExecutor, RuleExecutor
from repro.engines.datalog.planner import (
    CompiledNegation,
    Guard,
    RulePlan,
    plan_rule,
)
from repro.engines.datalog.storage import DeltaView, StoreBackend

#: integers with |v| <= this are exactly representable in float64
_FLOAT_EXACT = 2 ** 53
_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1
#: |operand| bound under which int64 add/sub cannot overflow
_SAFE_ADD = 2 ** 62
#: |operand| bound under which int64 multiply cannot overflow
_SAFE_MUL = 2 ** 31
#: packed multi-column keys must stay below this
_PACK_LIMIT = 2 ** 62


class ColumnarFallback(Exception):
    """Raised when data defeats the vectorised kernels at run time.

    The rule application is transparently re-run on the compiled executor;
    the vectorised path performs no store writes, so this is always safe.
    """


class ColumnarUnsupported(Exception):
    """Raised when a plan's *shape* cannot be lowered to columnar kernels
    (static, per plan — the reason string lands in the lowering goldens)."""


class ValueDict:
    """Executor-wide value ↔ ``int64`` code dictionary.

    Encoding goes through an ordinary Python dict, so two values share a
    code exactly when a stored tuple-set or hash index would treat them as
    the same key: ``1``/``1.0``/``True`` collapse, ``None`` is a value like
    any other, the same NaN object collapses with itself (identity
    shortcut) while distinct NaN objects stay distinct.  Per-code kind/
    numeric side arrays are maintained lazily for the comparison,
    arithmetic and aggregate kernels.
    """

    def __init__(self) -> None:
        self._codes: Dict[object, int] = {}
        self._values: List[object] = []
        self._synced = 0
        self._capacity = 0
        self._obj = None  # object array: code -> value
        self._kind = None  # int8: 0 other, 1 int(/bool), 2 float
        self._ival = None  # int64 value where kind == 1
        self._fval = None  # float64 value where exact
        self._fexact = None  # bool: float64 conversion is exact
        self._isnan = None  # bool: value is a float NaN
        # One ValueDict serves every worker of a serving pool.  Code
        # *allocation* (the check-then-append below) and side-array syncs
        # must be atomic or two threads could hand one code to two values;
        # pure lookups of already-allocated codes stay lock-free (dict reads
        # are atomic under the GIL and codes are never reassigned).
        self._lock = threading.RLock()

    def __len__(self) -> int:
        return len(self._values)

    # -- encoding ---------------------------------------------------------

    def encode_one(self, value) -> int:
        """Return the code for one value, allocating it on first sight."""
        try:
            code = self._codes.get(value, -1)
        except TypeError as exc:  # unhashable — the engine could never store it
            raise ColumnarFallback(f"unhashable value {value!r}") from exc
        if code < 0:
            with self._lock:
                code = self._codes.get(value, -1)
                if code < 0:
                    code = len(self._values)
                    self._codes[value] = code
                    self._values.append(value)
        return code

    def encode_rows(self, rows: Sequence[Tuple]) -> Tuple[Tuple, int]:
        """Encode tuples into per-position ``int64`` code columns.

        Returns ``(columns, row_count)``; raises :class:`ColumnarFallback`
        on ragged arities or unhashable components.  The hot path is
        C-level throughout: ``zip(*rows)`` transposes, a ``set`` pass
        allocates fresh codes, and ``map(dict.__getitem__)`` feeds
        ``np.fromiter`` — no per-cell Python bytecode (this is the
        representation-boundary cost every store relation pays once per
        version).
        """
        count = len(rows)
        if count == 0:
            return (), 0
        width = len(rows[0])
        if any(len(row) != width for row in rows):
            raise ColumnarFallback("ragged relation (mixed row arities)")
        return (
            tuple(self.encode_scalars(column) for column in zip(*rows)),
            count,
        )

    def encode_scalars(self, scalars: Sequence) -> "np.ndarray":
        """Encode a sequence of Python values into one code column.

        ``set``/``dict`` lookups give exactly the container key semantics
        codes are defined by (hash + identity-shortcut + ``==``), so a
        value collapses with an earlier code precisely when a stored tuple
        set would collapse them.
        """
        codes = self._codes
        values = self._values
        try:
            if set(scalars).difference(codes):
                # Fresh values: allocate in first-occurrence order (the
                # dictionary contract the kernel tests pin).  Amortised —
                # re-encoding known values takes the loop-free path below.
                with self._lock:
                    for value in scalars:
                        if value not in codes:
                            codes[value] = len(values)
                            values.append(value)
            return np.fromiter(
                map(codes.__getitem__, scalars),
                dtype=np.int64,
                count=len(scalars),
            )
        except TypeError as exc:
            raise ColumnarFallback(f"unhashable value in column: {exc}") from exc

    # -- per-code side arrays ---------------------------------------------

    def _sync(self) -> None:
        total = len(self._values)
        if total == self._synced:
            return
        with self._lock:
            self._sync_locked()

    def _sync_locked(self) -> None:
        total = len(self._values)
        if total == self._synced:
            return
        if total > self._capacity:
            capacity = max(64, self._capacity * 2, total)
            self._obj = self._grow(self._obj, capacity, object)
            self._kind = self._grow(self._kind, capacity, np.int8)
            self._ival = self._grow(self._ival, capacity, np.int64)
            self._fval = self._grow(self._fval, capacity, np.float64)
            self._fexact = self._grow(self._fexact, capacity, bool)
            self._isnan = self._grow(self._isnan, capacity, bool)
            self._capacity = capacity
        for code in range(self._synced, total):
            value = self._values[code]
            self._obj[code] = value
            if isinstance(value, bool):
                self._kind[code] = 1
                self._ival[code] = int(value)
                self._fval[code] = float(value)
                self._fexact[code] = True
            elif isinstance(value, int):
                if _INT64_MIN <= value <= _INT64_MAX:
                    self._kind[code] = 1
                    self._ival[code] = value
                    exact = -_FLOAT_EXACT <= value <= _FLOAT_EXACT
                    self._fexact[code] = exact
                    self._fval[code] = float(value) if exact else 0.0
                # integers beyond int64 stay kind 0: joinable by code,
                # any value-level kernel falls back
            elif isinstance(value, float):
                self._kind[code] = 2
                self._fval[code] = value
                self._fexact[code] = True
                self._isnan[code] = value != value
        self._synced = total

    def _grow(self, array, capacity: int, dtype):
        fresh = np.zeros(capacity, dtype=dtype)
        if array is not None:
            fresh[: self._synced] = array[: self._synced]
        return fresh

    def decode(self, codes: "np.ndarray") -> "np.ndarray":
        """Return the object array of values for a code column."""
        self._sync()
        return self._obj[codes]

    def nan_mask(self, codes: "np.ndarray") -> "np.ndarray":
        """Boolean mask of codes whose value is a float NaN."""
        self._sync()
        return self._isnan[codes]

    def numeric(self, codes: "np.ndarray") -> Tuple[str, "np.ndarray"]:
        """Return ``("int", int64)`` or ``("float", float64)`` values.

        Falls back on non-numeric columns, on mixed columns whose integers
        exceed exact ``float64`` range, and on integers beyond ``int64`` —
        every case where a vectorised dtype could silently diverge from
        Python arithmetic.
        """
        self._sync()
        kinds = self._kind[codes]
        if bool((kinds == 1).all()):
            return "int", self._ival[codes]
        if bool(((kinds == 1) | (kinds == 2)).all()):
            if not bool(self._fexact[codes].all()):
                raise ColumnarFallback(
                    "integer magnitude defeats exact float64 conversion"
                )
            return "float", self._fval[codes]
        raise ColumnarFallback("mixed or non-numeric column defeats dtype inference")


# -- shared array kernels (contract-tested directly) --------------------------


def _to_float(kind: str, values: "np.ndarray") -> "np.ndarray":
    if kind == "float":
        return values
    ok = (values <= _FLOAT_EXACT) & (values >= -_FLOAT_EXACT)
    if not bool(ok.all()):
        raise ColumnarFallback("integer magnitude defeats exact float64 conversion")
    return values.astype(np.float64)


def _numeric_pair(left, right):
    """Put two ``(kind, array)`` operands on one exact common dtype."""
    left_kind, left_values = left
    right_kind, right_values = right
    if left_kind == "int" and right_kind == "int":
        return "int", left_values, right_values
    return "float", _to_float(left_kind, left_values), _to_float(right_kind, right_values)


def _int_bound_ok(values: "np.ndarray", bound: int) -> bool:
    """Whether every |value| is strictly below ``bound`` (so two such
    operands can never overflow int64 under the guarded operation)."""
    if values.size == 0:
        return True
    return bool(((values < bound) & (values > -bound)).all())


def arith_kernel(op: str, left, right):
    """Vectorised ``_apply_arith``: ``(kind, array)`` in, ``(kind, array)`` out.

    Mirrors the interpreter exactly on the inputs it accepts; anything that
    could overflow ``int64``, divide by zero, produce NaN, or hit Python's
    own error paths raises :class:`ColumnarFallback` so the compiled re-run
    reproduces the exact value or exception.
    """
    kind, left_values, right_values = _numeric_pair(left, right)
    if op in ("+", "-"):
        if kind == "int" and not (
            _int_bound_ok(left_values, _SAFE_ADD) and _int_bound_ok(right_values, _SAFE_ADD)
        ):
            raise ColumnarFallback("possible int64 overflow in addition")
        result = left_values + right_values if op == "+" else left_values - right_values
    elif op == "*":
        if kind == "int" and not (
            _int_bound_ok(left_values, _SAFE_MUL) and _int_bound_ok(right_values, _SAFE_MUL)
        ):
            raise ColumnarFallback("possible int64 overflow in multiplication")
        result = left_values * right_values
    elif op == "/":
        if bool((right_values == 0).any()):
            # The interpreter raises ExecutionError("division by zero") for
            # the first offending row; replay exactly via the compiled path.
            raise ColumnarFallback("division by zero present")
        if kind == "int":
            result = np.floor_divide(left_values, right_values)  # == Python //
        else:
            result = left_values / right_values
    elif op == "%":
        if kind != "int":
            raise ColumnarFallback("float modulo is not vectorised")
        if bool((right_values == 0).any()):
            raise ColumnarFallback("modulo by zero present")
        result = np.remainder(left_values, right_values)  # == Python % on ints
    else:
        raise ColumnarFallback(f"unknown arithmetic operator {op!r}")
    if kind == "float" and bool(np.isnan(result).any()):
        # Each NaN the interpreter produces is a *distinct* object under set
        # semantics — unrepresentable in the shared dictionary.
        raise ColumnarFallback("NaN arithmetic result")
    return kind, result


def compare_codes_kernel(op: str, left: "np.ndarray", right: "np.ndarray", vd: ValueDict) -> "np.ndarray":
    """``=`` / ``<>`` on code columns with Python's ``==`` semantics.

    Equal codes mean dictionary-equal values — except NaN, where even the
    same object compares unequal under ``==`` (sets identity-shortcut,
    comparisons do not), hence the correction mask.
    """
    equal = left == right
    if bool(equal.any()):
        equal &= ~vd.nan_mask(left)
    return equal if op == "=" else ~equal


def hash_join_kernel(
    left_cols: Sequence["np.ndarray"],
    right_cols: Sequence["np.ndarray"],
    code_range: int,
    need_sorted_pos: bool = True,
) -> Tuple["np.ndarray", "np.ndarray", Optional["np.ndarray"]]:
    """Multi-column equality join on code columns.

    Returns ``(left_idx, order, sorted_pos)``: the matching pairs are
    ``(left_idx[k], order[sorted_pos[k]])``, grouped by left row.  Packs
    the key columns into one ``int64`` (falling back to joint factorization
    when the packed range would overflow), sorts the right side once and
    expands match ranges found by two ``searchsorted`` sweeps.

    The split result is deliberate: ``sorted_pos`` is piecewise-*contiguous*
    (each left row's matches are a run in the sorted order), so the caller
    gathers output columns as ``col[order][sorted_pos]`` — one O(right)
    shuffle plus one cache-friendly O(output) gather — instead of the
    random O(output) gather ``col[order[sorted_pos]]`` would cost per
    column.  A caller that gathers no right-side columns (all bound
    variables dead downstream but multiplicity still matters, e.g. a
    ``sum`` over an earlier column) passes ``need_sorted_pos=False`` and
    gets ``sorted_pos=None`` — the O(output) position build is the
    dominant cost on bandwidth-bound machines.
    """
    left_keys, right_keys = _pack_pair(left_cols, right_cols, code_range)
    n = len(left_keys)
    order = np.argsort(right_keys, kind="stable")
    ordered = right_keys[order]
    starts = np.searchsorted(ordered, left_keys, side="left")
    ends = np.searchsorted(ordered, left_keys, side="right")
    counts = ends - starts
    total = int(counts.sum())
    left_idx = np.repeat(np.arange(n, dtype=np.int64), counts)
    if not need_sorted_pos:
        return left_idx, order, None
    if total == 0:
        return left_idx, order, np.empty(0, dtype=np.int64)
    # sorted_pos[k] = starts[i] + (k - first output index of left row i)
    shift = starts - (np.cumsum(counts) - counts)
    sorted_pos = np.repeat(shift, counts) + np.arange(total, dtype=np.int64)
    return left_idx, order, sorted_pos


def membership_kernel(
    left_cols: Sequence["np.ndarray"],
    right_cols: Sequence["np.ndarray"],
    code_range: int,
) -> "np.ndarray":
    """Boolean mask: does each left key row appear among the right key rows?

    The negation-probe kernel (store hash-index semantics: key identity is
    code identity).
    """
    left_keys, right_keys = _pack_pair(left_cols, right_cols, code_range)
    return np.isin(left_keys, right_keys)


def _pack_pair(left_cols, right_cols, code_range: int):
    """Pack parallel key-column lists into one comparable int64 key each."""
    width = len(left_cols)
    if width == 1:
        return left_cols[0], right_cols[0]
    base = max(int(code_range), 1)
    packed_range = 1
    fits = True
    for _ in range(width):
        packed_range *= base
        if packed_range >= _PACK_LIMIT:
            fits = False
            break
    if fits:
        left = left_cols[0].astype(np.int64, copy=True)
        right = right_cols[0].astype(np.int64, copy=True)
        for index in range(1, width):
            left = left * base + left_cols[index]
            right = right * base + right_cols[index]
        return left, right
    # Joint factorization: dense group ids over the concatenated key rows.
    n = len(left_cols[0])
    stacked = np.concatenate(
        [np.stack(left_cols, axis=1), np.stack(right_cols, axis=1)], axis=0
    )
    _, inverse = np.unique(stacked, axis=0, return_inverse=True)
    inverse = inverse.reshape(-1).astype(np.int64)
    return inverse[:n], inverse[n:]


def distinct_rows_kernel(
    cols: Sequence["np.ndarray"], count: int, code_range: int
) -> Optional[List["np.ndarray"]]:
    """Return the distinct rows of ``cols`` as column arrays (row order is
    not meaningful — the result feeds a set).

    Packs the row into one ``int64``; when the packed range is small —
    which it is exactly on the dense workloads this executor targets — the
    dedup is a flag-array scatter, O(rows + range) with no sort at all.
    Larger packable ranges fall back to sort-based ``np.unique``; returns
    ``None`` when the row cannot be packed (caller uses
    :func:`group_rows_kernel`).
    """
    base = max(int(code_range), 1)
    width = len(cols)
    packed_range = 1
    for _ in range(width):
        packed_range *= base
        if packed_range >= _PACK_LIMIT:
            return None
    packed = cols[0] if width == 1 else cols[0].astype(np.int64, copy=True)
    for index in range(1, width):
        packed = packed * base + cols[index]
    if packed_range <= max(4 * count, 1 << 20):
        flags = np.zeros(packed_range, dtype=bool)
        flags[packed] = True
        distinct = np.flatnonzero(flags)
    else:
        distinct = np.unique(packed)
    out: List["np.ndarray"] = []
    for _ in range(width - 1):
        out.append(distinct % base)
        distinct = distinct // base
    out.append(distinct)
    out.reverse()
    return out


def group_rows_kernel(
    cols: Sequence["np.ndarray"], count: int, code_range: int
) -> Tuple[int, "np.ndarray", "np.ndarray"]:
    """Factorize rows into dense group ids.

    Returns ``(group_count, group_ids, first_row_index)`` where
    ``first_row_index[g]`` is the first row of group ``g`` (the exemplar the
    aggregate head projects group keys from).
    """
    if not cols:
        return 1, np.zeros(count, dtype=np.int64), np.zeros(1, dtype=np.int64)
    width = len(cols)
    if width == 1:
        packed = cols[0]
    else:
        base = max(int(code_range), 1)
        packed_range = 1
        fits = True
        for _ in range(width):
            packed_range *= base
            if packed_range >= _PACK_LIMIT:
                fits = False
                break
        if fits:
            packed = cols[0].astype(np.int64, copy=True)
            for index in range(1, width):
                packed = packed * base + cols[index]
        else:
            stacked = np.stack(cols, axis=1)
            uniq, first, inverse = np.unique(
                stacked, axis=0, return_index=True, return_inverse=True
            )
            return len(uniq), inverse.reshape(-1).astype(np.int64), first
    uniq, first, inverse = np.unique(packed, return_index=True, return_inverse=True)
    return len(uniq), inverse.reshape(-1).astype(np.int64), first


def grouped_reduce_kernel(
    func: str,
    group_ids: "np.ndarray",
    group_count: int,
    values,
) -> List:
    """Grouped reduction: count/sum/min/max/avg over ``(group, value)`` rows.

    ``values`` is ``None`` for ``count`` or a ``(kind, array)`` pair.  Sorts
    by group id (stable) and reduces contiguous segments with
    ``np.add.reduceat``-style ufunc kernels; returns a list of Python
    scalars, one per group.  Every group must be non-empty (groups come from
    actual solutions).  Order-sensitive cases (float sum/avg — segment order
    changes IEEE rounding) and NaN in ordered reductions fall back.
    """
    counts = np.bincount(group_ids, minlength=group_count)
    if func == "count":
        return counts.tolist()
    kind, value_array = values
    order = np.argsort(group_ids, kind="stable")
    ordered = value_array[order]
    segment_starts = np.cumsum(counts) - counts
    if func in ("sum", "avg"):
        if kind == "float":
            raise ColumnarFallback("float sum/avg is order-sensitive")
        if ordered.size:
            low = int(ordered.min())
            high = int(ordered.max())
            magnitude = max(abs(low), abs(high))
            if magnitude and magnitude * ordered.size >= _SAFE_ADD:
                raise ColumnarFallback("possible int64 overflow in sum")
        sums = np.add.reduceat(ordered, segment_starts)
        if func == "sum":
            return sums.tolist()
        if sums.size and not _int_bound_ok(sums, _FLOAT_EXACT):
            raise ColumnarFallback("sum magnitude defeats exact float64 division")
        return (sums / counts).tolist()
    if kind == "float" and bool(np.isnan(ordered).any()):
        raise ColumnarFallback("NaN defeats ordered reduction")
    if func == "min":
        return np.minimum.reduceat(ordered, segment_starts).tolist()
    if func == "max":
        return np.maximum.reduceat(ordered, segment_starts).tolist()
    raise ColumnarFallback(f"unknown aggregate function {func!r}")


# -- static plan lowering -----------------------------------------------------


@dataclass(frozen=True)
class _ColumnarStep:
    """One join step, with key sources split by how the kernel consumes them."""

    relation: str
    body_index: int
    is_delta: bool
    var_keys: Tuple[Tuple[int, str], ...]  # (position, level column)
    const_keys: Tuple[Tuple[int, object], ...]  # (position, literal value)
    param_keys: Tuple[Tuple[int, str], ...]  # (position, parameter name)
    bind_positions: Tuple[Tuple[int, str], ...]
    eq_positions: Tuple[Tuple[int, int], ...]
    guard: Guard
    #: columns still referenced at or after this step's guard — the join
    #: gathers only these (``None`` disables pruning: count(*) aggregates
    #: need every column for whole-binding distinctness)
    live_out: Optional[frozenset] = None
    #: existence check instead of expansion: every column this step binds is
    #: dead downstream and the rule has no aggregates, so match
    #: *multiplicity* can never be observed (the final projection
    #: deduplicates) — the join reduces to a membership mask over the level
    semijoin: bool = False


@dataclass(frozen=True)
class _ColumnarPlan:
    """A plan vetted and reshaped for the columnar kernels."""

    plan: RulePlan
    steps: Tuple[_ColumnarStep, ...]
    param_names: Tuple[str, ...]
    unresolved_message: Optional[str]


def _contains_param(term: Term) -> bool:
    if isinstance(term, Param):
        return True
    if isinstance(term, ArithExpr):
        return _contains_param(term.left) or _contains_param(term.right)
    return False


def _term_vars(term: Term, out: Set[str]) -> None:
    if isinstance(term, Var):
        out.add(term.name)
    elif isinstance(term, ArithExpr):
        _term_vars(term.left, out)
        _term_vars(term.right, out)


def _guard_vars(guard: Guard) -> Set[str]:
    refs: Set[str] = set()
    for op in guard.ops:
        if op[0] == "assign":
            _term_vars(op[2], refs)
        else:
            _term_vars(op[1].left, refs)
            _term_vars(op[1].right, refs)
    for negation in guard.negations:
        for term in negation.terms:
            _term_vars(term, refs)
    return refs


def _lower_plan(plan: RulePlan) -> _ColumnarPlan:
    """Vet ``plan`` for vectorised execution; raise :class:`ColumnarUnsupported`
    (with the reason the goldens snapshot) when its shape cannot be lowered."""
    rule = plan.rule
    if plan.delta_index is not None and (
        not plan.steps or plan.steps[0].body_index != plan.delta_index
    ):
        raise ColumnarUnsupported("delta atom is not at step 0")
    param_names = tuple(rule_param_names(rule))
    bound: Set[str] = set()

    def vet_term(term: Term, purpose: str, allow_arith: bool = True) -> None:
        if isinstance(term, (Const, Param)):
            return
        if isinstance(term, Var):
            if term.name not in bound:
                raise ColumnarUnsupported(
                    f"{purpose} reads never-bound variable {term.name!r}"
                )
            return
        if isinstance(term, ArithExpr):
            if not allow_arith:
                raise ColumnarUnsupported(f"arithmetic in {purpose}")
            if term.op not in ("+", "-", "*", "/", "%"):
                raise ColumnarUnsupported(
                    f"unknown arithmetic operator {term.op!r} in {purpose}"
                )
            if _contains_param(term):
                raise ColumnarUnsupported(
                    f"parameter inside arithmetic in {purpose} defeats "
                    "static column typing"
                )
            vet_term(term.left, purpose, allow_arith=True)
            vet_term(term.right, purpose, allow_arith=True)
            return
        if isinstance(term, Wildcard):
            raise ColumnarUnsupported(f"wildcard in {purpose}")
        raise ColumnarUnsupported(f"unsupported term {term!r} in {purpose}")

    def vet_guard(guard: Guard, where: str) -> None:
        for op in guard.ops:
            if op[0] == "assign":
                vet_term(op[2], f"assignment in {where}")
                bound.add(op[1])
            else:
                comparison = op[1]
                vet_term(comparison.left, f"comparison in {where}")
                vet_term(comparison.right, f"comparison in {where}")
        for negation in guard.negations:
            for term in negation.terms:
                # Arithmetic negation keys can raise per row (the interpreter
                # evaluates them lazily); keep that scheduling on the tuple
                # executors.
                vet_term(term, f"negation key in {where}", allow_arith=False)

    vet_guard(plan.prelude, "prelude")
    steps: List[_ColumnarStep] = []
    for index, step in enumerate(plan.steps):
        var_keys: List[Tuple[int, str]] = []
        const_keys: List[Tuple[int, object]] = []
        param_keys: List[Tuple[int, str]] = []
        for position, (is_var, source) in zip(step.key_positions, step.key_sources):
            if is_var and isinstance(source, str) and source.startswith("$"):
                param_keys.append((position, source[1:]))
            elif is_var:
                if source not in bound:
                    raise ColumnarUnsupported(
                        f"step {index} probes unbound variable {source!r}"
                    )
                var_keys.append((position, source))
            else:
                const_keys.append((position, source))
        for _position, name in step.bind_positions:
            bound.add(name)
        vet_guard(step.guard, f"step {index}")
        steps.append(
            _ColumnarStep(
                relation=step.relation,
                body_index=step.body_index,
                is_delta=(
                    plan.delta_index is not None
                    and step.body_index == plan.delta_index
                ),
                var_keys=tuple(var_keys),
                const_keys=tuple(const_keys),
                param_keys=tuple(param_keys),
                bind_positions=step.bind_positions,
                eq_positions=step.eq_positions,
                guard=step.guard,
            )
        )
    if rule.aggregations:
        for aggregation in rule.aggregations:
            if aggregation.func == "collect":
                raise ColumnarUnsupported(
                    "collect aggregate is order-sensitive"
                )
            if aggregation.func not in ("count", "sum", "min", "max", "avg"):
                raise ColumnarUnsupported(
                    f"unknown aggregate function {aggregation.func!r}"
                )
            if aggregation.argument is not None:
                vet_term(
                    aggregation.argument, "aggregate argument", allow_arith=False
                )
            bound.add(aggregation.result.name)
        for name in rule.group_by_variables():
            if name not in bound:
                raise ColumnarUnsupported(
                    f"aggregate groups by never-bound variable {name!r}"
                )
    for term in rule.head.terms:
        vet_term(term, "head")
    unresolved_message: Optional[str] = None
    if plan.unresolved:
        unresolved_text = ", ".join(str(c) for c in plan.unresolved)
        unresolved_message = (
            f"rule {rule} has comparisons over unbound variables: "
            f"{unresolved_text}"
        )
    # Backward liveness: each join gathers only columns referenced at or
    # after its guard.  Multiplicity is untouched (columns are dropped, rows
    # never deduplicated mid-plan) so aggregates stay exact — except
    # count(*), whose whole-binding distinctness needs every column, which
    # keeps ``live_out=None`` and disables pruning.
    prune = not any(
        aggregation.argument is None for aggregation in rule.aggregations
    )
    if prune:
        live: Set[str] = set()
        for term in rule.head.terms:
            _term_vars(term, live)
        for aggregation in rule.aggregations:
            _term_vars(aggregation.argument, live)
        live.update(rule.group_by_variables())
        for index in range(len(steps) - 1, -1, -1):
            step = steps[index]
            live_out = frozenset(live | _guard_vars(step.guard))
            semijoin = not rule.aggregations and all(
                name not in live_out for _position, name in step.bind_positions
            )
            steps[index] = replace(step, live_out=live_out, semijoin=semijoin)
            live = set(live_out)
            live.update(name for _position, name in step.var_keys)
    return _ColumnarPlan(
        plan=plan,
        steps=tuple(steps),
        param_names=param_names,
        unresolved_message=unresolved_message,
    )


# -- the lowering describer (golden-test hook) --------------------------------


def _describe_term(term: Term) -> str:
    return str(term)


def _describe_guard(guard: Guard, lines: List[str], indent: str) -> None:
    for op in guard.ops:
        if op[0] == "assign":
            lines.append(f"{indent}assign {op[1]} := {_describe_term(op[2])}")
        else:
            comparison = op[1]
            mode = "code-equality" if comparison.op in ("=", "<>") else "numeric"
            lines.append(
                f"{indent}mask {comparison}  [{mode} mask]"
            )
    for negation in guard.negations:
        keys = ", ".join(_describe_term(term) for term in negation.terms)
        lines.append(
            f"{indent}mask-not-in {negation.relation} on positions "
            f"{negation.positions!r} keys [{keys}]"
        )


def describe_columnar_plan(plan: RulePlan) -> str:
    """Render ``plan``'s columnar lowering as deterministic text.

    The golden-test hook, the columnar analogue of
    :func:`~repro.engines.datalog.executor_compiled.generate_plan_source`:
    one line per vectorised operation, or the fallback reason when the plan
    cannot be lowered.  Works without NumPy installed (lowering is pure
    plan analysis).
    """
    rule = plan.rule
    delta_note = (
        f"  [delta at body position {plan.delta_index}]"
        if plan.delta_index is not None
        else ""
    )
    lines = [f"columnar plan for {rule}{delta_note}"]
    try:
        lowered = _lower_plan(plan)
    except ColumnarUnsupported as exc:
        lines.append(f"  fallback to compiled executor: {exc}")
        return "\n".join(lines) + "\n"
    if lowered.param_names:
        lines.append(
            "  params: " + ", ".join(f"${name}" for name in lowered.param_names)
        )
    if not plan.prelude.is_empty():
        lines.append("  prelude:")
        _describe_guard(plan.prelude, lines, "    ")
    for index, step in enumerate(lowered.steps):
        source = "delta" if step.is_delta else "store"
        key_parts = [f"col {pos} == {name}" for pos, name in step.var_keys]
        key_parts += [f"col {pos} == {value!r}" for pos, value in step.const_keys]
        key_parts += [f"col {pos} == ${name}" for pos, name in step.param_keys]
        if key_parts and step.semijoin:
            mode = f"semi-join (existence mask) on [{', '.join(key_parts)}]"
        elif key_parts:
            mode = f"hash-join on [{', '.join(key_parts)}]"
        elif step.semijoin:
            mode = "existence check (non-empty relation keeps the level)"
        else:
            mode = "scan (cartesian extend)"
        lines.append(f"  step {index}: {step.relation} [{source}]  {mode}")
        for a, b in step.eq_positions:
            lines.append(f"    require col {a} == col {b}")
        for position, name in step.bind_positions:
            if step.semijoin:
                lines.append(
                    f"    col {position} ({name}) dead downstream — not gathered"
                )
            else:
                lines.append(f"    bind {name} <- col {position}")
        if step.live_out is not None:
            carried = ", ".join(sorted(step.live_out))
            lines.append(f"    carry only live columns [{carried}]")
        if not step.guard.is_empty():
            _describe_guard(step.guard, lines, "    ")
    if lowered.unresolved_message:
        lines.append("  raise-if-nonempty: unresolved comparisons (unsafe rule)")
    if rule.aggregations:
        group_keys = ", ".join(rule.group_by_variables())
        lines.append(f"  group by [{group_keys}]")
        for aggregation in rule.aggregations:
            lines.append(f"    reduce {aggregation}")
    head = ", ".join(_describe_term(term) for term in rule.head.terms)
    lines.append(f"  project [{head}]  dedup=unique, decode via value dictionary")
    return "\n".join(lines) + "\n"


# -- runtime ------------------------------------------------------------------


class _Level:
    """One join level: ``count`` aligned ``int64`` code columns per variable."""

    __slots__ = ("count", "cols")

    def __init__(self, count: int, cols: Dict[str, "np.ndarray"]) -> None:
        self.count = count
        self.cols = cols

    def compress(self, mask: "np.ndarray") -> "_Level":
        count = int(mask.sum())
        if count == self.count:
            return self
        return _Level(count, {name: col[mask] for name, col in self.cols.items()})

    def empty(self, extra_names: Sequence[str] = ()) -> "_Level":
        cols = {name: col[:0] for name, col in self.cols.items()}
        for name in extra_names:
            cols[name] = np.empty(0, dtype=np.int64)
        return _Level(0, cols)


class _Evaluation:
    """One vectorised rule application (pure: never writes to the store)."""

    def __init__(
        self,
        executor: "ColumnarExecutor",
        lowered: _ColumnarPlan,
        store: StoreBackend,
        params: Dict[str, object],
    ) -> None:
        self.executor = executor
        self.vd = executor._vd
        self.lowered = lowered
        self.store = store
        self.params = params

    # -- term evaluation ---------------------------------------------------

    def _scalar_code(self, term) -> int:
        if isinstance(term, Const):
            return self.vd.encode_one(term.value)
        return self.vd.encode_one(self.params[term.name])  # Param (vetted)

    def _eval_codes(self, term: Term, level: _Level) -> "np.ndarray":
        if isinstance(term, Var):
            return level.cols[term.name]
        if isinstance(term, (Const, Param)):
            return np.full(level.count, self._scalar_code(term), dtype=np.int64)
        # ArithExpr (vetted): numeric evaluation, encoded back to codes
        kind, values = self._eval_numeric(term, level)
        return self.vd.encode_scalars(values.tolist())

    def _eval_numeric(self, term: Term, level: _Level):
        if isinstance(term, Var):
            return self.vd.numeric(level.cols[term.name])
        if isinstance(term, (Const, Param)):
            value = term.value if isinstance(term, Const) else self.params[term.name]
            if isinstance(value, bool):
                return "int", np.full(level.count, int(value), dtype=np.int64)
            if isinstance(value, int):
                if not (_INT64_MIN <= value <= _INT64_MAX):
                    raise ColumnarFallback("integer literal beyond int64")
                return "int", np.full(level.count, value, dtype=np.int64)
            if isinstance(value, float):
                return "float", np.full(level.count, value, dtype=np.float64)
            raise ColumnarFallback(f"non-numeric operand {value!r}")
        if isinstance(term, ArithExpr):
            return arith_kernel(
                term.op,
                self._eval_numeric(term.left, level),
                self._eval_numeric(term.right, level),
            )
        raise ColumnarFallback(f"cannot evaluate term {term!r}")

    # -- guards ------------------------------------------------------------

    def _check_mask(self, comparison, level: _Level) -> "np.ndarray":
        op = comparison.op
        arith = isinstance(comparison.left, ArithExpr) or isinstance(
            comparison.right, ArithExpr
        )
        if op in ("=", "<>"):
            if not arith:
                return compare_codes_kernel(
                    op,
                    self._eval_codes(comparison.left, level),
                    self._eval_codes(comparison.right, level),
                    self.vd,
                )
            _kind, left, right = _numeric_pair(
                self._eval_numeric(comparison.left, level),
                self._eval_numeric(comparison.right, level),
            )
            return left == right if op == "=" else left != right
        # Ordering: exact numeric kernels only; strings/mixed fall back and
        # the compiled re-run reproduces Python's answer or TypeError.
        _kind, left, right = _numeric_pair(
            self._eval_numeric(comparison.left, level),
            self._eval_numeric(comparison.right, level),
        )
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        raise ColumnarFallback(f"unknown comparison operator {op!r}")

    def _negation_mask(self, negation: CompiledNegation, level: _Level):
        """Return the keep-mask for one negation (``None`` = keep all)."""
        cols, count = self.executor._relation_columns(self.store, negation.relation)
        if count == 0:
            return None
        if not negation.positions:
            # Fully existential probe: any stored fact rejects every row.
            return False
        if max(negation.positions) >= len(cols):
            raise ColumnarFallback("negation positions exceed stored arity")
        left = [self._eval_codes(term, level) for term in negation.terms]
        right = [cols[position] for position in negation.positions]
        return ~membership_kernel(left, right, len(self.vd))

    def _apply_guard(self, guard: Guard, level: _Level) -> _Level:
        for op in guard.ops:
            if op[0] == "assign":
                level.cols[op[1]] = self._eval_codes(op[2], level)
            else:
                level = level.compress(self._check_mask(op[1], level))
        for negation in guard.negations:
            mask = self._negation_mask(negation, level)
            if mask is None:
                continue
            if mask is False:
                return level.empty()
            level = level.compress(mask)
        return level

    # -- joins -------------------------------------------------------------

    def _join_step(
        self, step: _ColumnarStep, level: _Level, delta_view: Optional[DeltaView]
    ) -> _Level:
        if step.is_delta and delta_view is not None:
            cols, count = self.executor._delta_columns(delta_view)
        else:
            cols, count = self.executor._relation_columns(self.store, step.relation)
        live = step.live_out
        bind_names = [
            name
            for _pos, name in step.bind_positions
            if live is None or name in live
        ]
        if count == 0 or level.count == 0:
            return level.empty(bind_names)
        needed = [pos for pos, _ in step.var_keys]
        needed += [pos for pos, _ in step.const_keys]
        needed += [pos for pos, _ in step.param_keys]
        needed += [pos for pos, _ in step.bind_positions]
        needed += [pos for pair in step.eq_positions for pos in pair]
        if needed and max(needed) >= len(cols):
            raise ColumnarFallback("probe positions exceed stored arity")
        mask = None
        for position, value in step.const_keys:
            part = cols[position] == self.vd.encode_one(value)
            mask = part if mask is None else (mask & part)
        for position, name in step.param_keys:
            part = cols[position] == self.vd.encode_one(self.params[name])
            mask = part if mask is None else (mask & part)
        for a, b in step.eq_positions:
            # keep iff not (row[a] != row[b]): code equality, NaN rejected
            part = (cols[a] == cols[b]) & ~self.vd.nan_mask(cols[a])
            mask = part if mask is None else (mask & part)
        row_idx = np.nonzero(mask)[0] if mask is not None else None
        matched = int(row_idx.size) if row_idx is not None else count
        if matched == 0:
            return level.empty(bind_names)
        if step.var_keys:
            left_cols = [level.cols[name] for _pos, name in step.var_keys]
            right_cols = [
                cols[pos][row_idx] if row_idx is not None else cols[pos]
                for pos, _name in step.var_keys
            ]
            if step.semijoin:
                # Existence only: no bound column survives and multiplicity
                # is unobservable (no aggregates) — never expand the output.
                keep = membership_kernel(left_cols, right_cols, len(self.vd))
                count = int(keep.sum())
                if count == 0:
                    return level.empty(bind_names)
                return _Level(
                    count,
                    {
                        name: col if count == level.count else col[keep]
                        for name, col in level.cols.items()
                        if live is None or name in live
                    },
                )
            live_binds = [
                (position, name)
                for position, name in step.bind_positions
                if live is None or name in live
            ]
            left_idx, order, sorted_pos = hash_join_kernel(
                left_cols, right_cols, len(self.vd),
                need_sorted_pos=bool(live_binds),
            )
            total = int(left_idx.size)
            if total == 0:
                return level.empty(bind_names)
            new_cols = {
                name: col[left_idx]
                for name, col in level.cols.items()
                if live is None or name in live
            }
            for position, name in live_binds:
                src = cols[position][row_idx] if row_idx is not None else cols[position]
                # One O(matched) shuffle + one piecewise-contiguous gather —
                # the random src[order[sorted_pos]] gather is the cache miss
                # the kernel's split result exists to avoid.
                new_cols[name] = src[order][sorted_pos]
            return _Level(total, new_cols)
        if step.semijoin:
            # Keyless existence check: any matching stored row keeps every
            # level row exactly once.
            return _Level(
                level.count,
                {
                    name: col
                    for name, col in level.cols.items()
                    if live is None or name in live
                },
            )
        left_idx = np.repeat(np.arange(level.count, dtype=np.int64), matched)
        total = int(left_idx.size)
        if total == 0:
            return level.empty(bind_names)
        new_cols = {
            name: col[left_idx]
            for name, col in level.cols.items()
            if live is None or name in live
        }
        for position, name in step.bind_positions:
            if live is not None and name not in live:
                continue
            src = cols[position][row_idx] if row_idx is not None else cols[position]
            new_cols[name] = np.tile(src, level.count)
        return _Level(total, new_cols)

    # -- projection and aggregation ---------------------------------------

    def _decode_distinct(self, head_cols: List["np.ndarray"], count: int) -> Set[Tuple]:
        if count == 0:
            return set()
        if not head_cols:
            return {()}
        distinct = distinct_rows_kernel(head_cols, count, len(self.vd))
        if distinct is None:  # row not packable: joint-factorize instead
            _count, _gids, first = group_rows_kernel(head_cols, count, len(self.vd))
            distinct = [col[first] for col in head_cols]
        decoded = [self.vd.decode(col).tolist() for col in distinct]
        if len(decoded) == 1:
            return {(value,) for value in decoded[0]}
        return set(zip(*decoded))

    def _project(self, level: _Level) -> Set[Tuple]:
        rule = self.lowered.plan.rule
        head_cols = [self._eval_codes(term, level) for term in rule.head.terms]
        return self._decode_distinct(head_cols, level.count)

    def _aggregate(self, level: _Level) -> Set[Tuple]:
        rule = self.lowered.plan.rule
        if level.count == 0:
            return set()
        group_keys = rule.group_by_variables()
        group_cols = [level.cols[name] for name in group_keys]
        group_count, group_ids, first = group_rows_kernel(
            group_cols, level.count, len(self.vd)
        )
        group_level = _Level(
            group_count, {name: col[first] for name, col in level.cols.items()}
        )
        for aggregation in rule.aggregations:
            if aggregation.argument is None:
                # count(*): distinct whole bindings per group.  All level
                # columns determine the binding (parameters are constant per
                # run and cannot affect distinctness).
                all_cols = [level.cols[name] for name in sorted(level.cols)]
                _n, _g, distinct_first = group_rows_kernel(
                    all_cols, level.count, len(self.vd)
                )
                per_group = np.bincount(
                    group_ids[distinct_first], minlength=group_count
                ).tolist()
                group_level.cols[aggregation.result.name] = self.vd.encode_scalars(
                    per_group
                )
                continue
            arg_codes = self._eval_codes(aggregation.argument, level)
            if aggregation.distinct:
                _n, _g, pair_first = group_rows_kernel(
                    [group_ids, arg_codes], level.count, len(self.vd)
                )
                sel_groups = group_ids[pair_first]
                sel_codes = arg_codes[pair_first]
            else:
                sel_groups = group_ids
                sel_codes = arg_codes
            values = (
                None
                if aggregation.func == "count"
                else self.vd.numeric(sel_codes)
            )
            reduced = grouped_reduce_kernel(
                aggregation.func, sel_groups, group_count, values
            )
            group_level.cols[aggregation.result.name] = self.vd.encode_scalars(reduced)
        head_cols = [
            self._eval_codes(term, group_level) for term in rule.head.terms
        ]
        return self._decode_distinct(head_cols, group_count)

    # -- whole-rule driver -------------------------------------------------

    def run(self, delta_view: Optional[DeltaView]) -> Set[Tuple]:
        lowered = self.lowered
        level = _Level(1, {})
        level = self._apply_guard(lowered.plan.prelude, level)
        for step in lowered.steps:
            level = self._join_step(step, level, delta_view)
            level = self._apply_guard(step.guard, level)
        if lowered.unresolved_message is not None and level.count > 0:
            # End-of-body with unresolved comparisons: the interpreter's
            # unsafe-rule error (empty joins never raise).
            raise ExecutionError(lowered.unresolved_message)
        if lowered.plan.rule.aggregations:
            return self._aggregate(level)
        return self._project(level)


# -- the executor -------------------------------------------------------------


_UNSET = object()


class ColumnarExecutor(RuleExecutor):
    """Evaluates rules level-at-a-time over NumPy column arrays.

    Lowerings are cached by plan *structure* with an identity memo in front
    (the same two-tier scheme as the compiled executor's closure cache).
    Store relations are encoded to code columns once per
    :meth:`StoreBackend.data_version` and reused across applications;
    ``DeltaView`` encodings are memoised per view object, so the views the
    engine shares across rules within one iteration encode once.

    Counters (the engine surfaces their sum as
    ``DatalogEngine.executor_fallback_count``):

    * ``fallback_count`` — distinct plans statically routed to the compiled
      executor (shape cannot be vectorised);
    * ``runtime_fallback_count`` — rule applications that started columnar
      but hit data the kernels cannot handle exactly and re-ran compiled;
    * ``vectorised_count`` — rule applications completed on the columnar
      path (what the differential corpus' coverage assertions read);
    * ``lower_count`` — plans actually lowered (structural cache misses).
    """

    name = "columnar"

    _ID_MEMO_LIMIT = 4096
    _STORE_CACHE_LIMIT = 512
    _DELTA_MEMO_LIMIT = 1024
    # Removal masking is O(rows × removed); past this many net removals a
    # full re-encode is cheaper than the masking passes.
    _INCREMENTAL_REMOVAL_LIMIT = 64

    def __init__(self) -> None:
        if np is None:
            raise ExecutionError(
                "the columnar executor requires NumPy (install the "
                "repro[columnar] extra); choose executor='compiled' or "
                "'interpreted' instead"
            )
        self._vd = ValueDict()
        self._fallback = CompiledExecutor()
        self._by_structure: Dict[RulePlan, object] = {}
        self._by_id: Dict[int, Tuple[RulePlan, object]] = {}
        # (id(store), relation) -> (store, data_version, columns, count);
        # the store reference pins the id against recycling.
        self._store_cache: Dict[Tuple[int, str], Tuple] = {}
        self._delta_memo: Dict[int, Tuple] = {}
        self.fallback_count = 0
        self.runtime_fallback_count = 0
        self.vectorised_count = 0
        self.lower_count = 0
        #: store relations actually encoded (cache misses in
        #: :meth:`_relation_columns`) — what the cross-query encoding-reuse
        #: tests assert on
        self.store_encode_count = 0
        #: stale cache entries advanced by folding the store's change log
        #: into the cached columns instead of re-encoding the relation —
        #: the streaming-mutation benchmarks assert this dominates
        self.columnar_incremental_encode_count = 0
        # One executor is shared by every worker of a serving pool: cache
        # *writes* (and the encode they guard) run under this lock with a
        # double-check; the hit paths stay lock-free (single dict reads of
        # immutable tuples, atomic under the GIL).
        self._lock = threading.RLock()

    # -- lowering cache ----------------------------------------------------

    def lowered_for(self, plan: RulePlan) -> Optional[_ColumnarPlan]:
        """Return the cached lowering for ``plan`` (``None`` = compiled)."""
        memoised = self._by_id.get(id(plan))
        if memoised is not None and memoised[0] is plan:
            lowered = memoised[1]
            return lowered if isinstance(lowered, _ColumnarPlan) else None
        with self._lock:
            lowered = self._by_structure.get(plan, _UNSET)
            if lowered is _UNSET:
                try:
                    lowered = _lower_plan(plan)
                    self.lower_count += 1
                except ColumnarUnsupported as exc:
                    lowered = str(exc)
                    self.fallback_count += 1
                self._by_structure[plan] = lowered
            if len(self._by_id) >= self._ID_MEMO_LIMIT:
                self._by_id.clear()
            self._by_id[id(plan)] = (plan, lowered)
        return lowered if isinstance(lowered, _ColumnarPlan) else None

    # -- column caches -----------------------------------------------------

    def _relation_columns(self, store: StoreBackend, relation: str):
        version = store.data_version(relation)
        cache_key, pin = store.cache_identity(relation)
        key = (cache_key, relation)
        if version is not None:
            entry = self._store_cache.get(key)
            if entry is not None and entry[0] is pin and entry[1] == version:
                return entry[2], entry[3]
        with self._lock:
            if version is not None:
                entry = self._store_cache.get(key)
                if entry is not None and entry[0] is pin and entry[1] == version:
                    return entry[2], entry[3]
                if entry is not None and entry[0] is pin:
                    # Stale entry for the same live store: try to advance
                    # the cached columns by the store's change log — the
                    # streaming path where a relation grows by |Δ| rows per
                    # mutation batch while the full relation stays large.
                    advanced = self._advance_columns(store, relation, entry)
                    if advanced is not None:
                        cols, count = advanced
                        self.columnar_incremental_encode_count += 1
                        self._store_cache[key] = (pin, version, cols, count)
                        return cols, count
            cols, count = self._vd.encode_rows(store.scan(relation))
            self.store_encode_count += 1
            if version is not None:
                if len(self._store_cache) >= self._STORE_CACHE_LIMIT:
                    self._store_cache.clear()
                self._store_cache[key] = (pin, version, cols, count)
        return cols, count

    def _advance_columns(self, store: StoreBackend, relation: str, entry):
        """Fold the store delta since ``entry``'s version into its columns.

        Returns the advanced ``(columns, count)`` or ``None`` when a full
        re-encode is required (change log truncated/replaced, arity drift,
        too many removals, or anything the fold cannot prove exact).
        Codes are first-occurrence-order but order-independent as an
        encoding, so appending freshly-encoded rows to cached columns *is*
        a valid encoding of the grown relation; removals are located by a
        per-column equality mask and must match exactly one row each.
        """
        _, cached_version, cols, count = entry
        changes = store.changes_since(relation, cached_version)
        if changes is None:
            return None
        added, removed = changes
        if len(removed) > self._INCREMENTAL_REMOVAL_LIMIT:
            return None
        try:
            if removed:
                if not count:
                    return None
                keep = np.ones(count, dtype=bool)
                for row in removed:
                    if len(row) != len(cols):
                        return None
                    match = keep
                    for column, value in zip(cols, row):
                        match = match & (column == self._vd.encode_one(value))
                    if int(np.count_nonzero(match)) != 1:
                        return None
                    keep &= ~match
                cols = tuple(column[keep] for column in cols)
                count -= len(removed)
            if added:
                new_cols, new_count = self._vd.encode_rows(added)
                if count == 0:
                    cols, count = new_cols, new_count
                elif len(new_cols) != len(cols):
                    return None
                else:
                    cols = tuple(
                        np.concatenate((old, new))
                        for old, new in zip(cols, new_cols)
                    )
                    count += new_count
        except ColumnarFallback:
            # Let the full-scan path decide whether the fallback is real
            # (the offending value may only live in removed rows).
            return None
        return cols, count

    def _delta_columns(self, view: DeltaView):
        entry = self._delta_memo.get(id(view))
        if entry is not None and entry[0] is view:
            return entry[1], entry[2]
        with self._lock:
            entry = self._delta_memo.get(id(view))
            if entry is not None and entry[0] is view:
                return entry[1], entry[2]
            cols, count = self._vd.encode_rows(view.rows)
            if len(self._delta_memo) >= self._DELTA_MEMO_LIMIT:
                self._delta_memo.clear()
            self._delta_memo[id(view)] = (view, cols, count)
        return cols, count

    # -- RuleExecutor ------------------------------------------------------

    def evaluate_rule(
        self, rule, store, delta_index=None, delta_rows=None, plan=None, params=None
    ):
        if plan is None:
            delta_size = len(delta_rows) if delta_rows is not None else 0
            plan = plan_rule(rule, store, delta_index, delta_size)
        lowered = self.lowered_for(plan)
        if lowered is None:
            return self._fallback.evaluate_rule(
                rule, store, delta_index, delta_rows, plan, params
            )
        if rule.aggregations:
            # Aggregates recompute over the full store (a delta row can
            # change any group), exactly like the other executors — which
            # also never check them for a delta-position mismatch.
            delta_view = None
        else:
            delta_view = resolve_delta_view(plan, delta_index, delta_rows)
        resolved: Dict[str, object] = {}
        for name in lowered.param_names:
            # Eager, like the compiled executor's parameter hoisting.
            if params is None or name not in params:
                raise ExecutionError(
                    f"no value bound for query parameter ${name}"
                )
            resolved[name] = params[name]
        try:
            result = _Evaluation(self, lowered, store, resolved).run(delta_view)
        except ColumnarFallback:
            self.runtime_fallback_count += 1
            return self._fallback.evaluate_rule(
                rule, store, delta_index, delta_rows, plan, params
            )
        self.vectorised_count += 1
        return result
