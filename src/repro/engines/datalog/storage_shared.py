"""Epoch-versioned shared EDB storage for the concurrent serving layer.

One writer, many readers, no torn reads: :class:`SharedEDB` wraps any
:class:`~repro.engines.datalog.storage.StoreBackend` with multi-version
visibility.  Writers (``insert``/``retract``/``ingest``) apply *effective*
deltas under a single-writer lock and bump a global **epoch**; readers
``pin()`` the current epoch and receive an :class:`EpochSnapshot` that keeps
answering with the pinned state no matter how many writes land afterwards.

The representation is the session delta log generalised into a per-epoch
chain: the base store materialises the state as of a **floor** epoch, and
every later epoch contributes one list of ``(relation, row, ±1)`` entries.
A snapshot at epoch ``E`` reads "base ± net delta over ``(floor, E]``" — the
net delta is folded once at pin time (with add/remove cancellation, the same
arithmetic as the session's ``_fold_delta``) and is immutable afterwards, so
snapshot reads take no locks.  When nothing is pinned, the chain prefix is
folded into the base store (bounded by the positions of registered
*consumers* — serving workers that still need the entries to feed
incremental view maintenance), so the read fast path stays "delegate to the
base store" and memory stays bounded.

:class:`SnapshotView` is the per-worker adapter: a full ``StoreBackend``
that routes shared-EDB reads through a pinned snapshot while keeping every
derived (IDB) relation — and any transient EDB patches the IVM union-state
machinery makes mid-maintenance — in a private in-memory store invisible to
other workers.

Relations whose backing store cannot serve concurrent readers
(``concurrent_reads = False``, e.g. SQLite's single connection) are
serialised through one base mutex; the in-memory store needs none.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.common.errors import ExecutionError
from repro.engines.datalog.statistics import RelationStats, compute_stats
from repro.engines.datalog.storage import (
    FactStore,
    Key,
    Positions,
    Row,
    StoreBackend,
    StoreSpec,
    create_store,
)

#: one effective mutation: ``(relation, row, +1 | -1)`` — the session delta
#: log entry shape, so chain suffixes feed ``Session`` logs verbatim.
Entry = Tuple[str, Row, int]

#: net delta of one relation versus the base floor: ``(added, removed)``
#: with ``added`` disjoint from the base and ``removed`` a subset of it.
NetPair = Tuple[Set[Row], Set[Row]]


def _key_matches(row: Row, positions: Sequence[int], key: Key) -> bool:
    """Row-key equality with dict-key semantics (``==`` plus identity, so
    NaN matches itself the way a hash-index probe would)."""
    for position, wanted in zip(positions, key):
        value = row[position]
        if value is not wanted and value != wanted:
            return False
    return True


class SharedEDB:
    """An epoch-versioned, single-writer / multi-reader EDB store.

    Parameters
    ----------
    store:
        The base backend (any :func:`create_store` spec or instance).  Data
        already in it is the state at epoch 0.
    max_log_entries:
        Soft bound on the delta chain.  When the chain exceeds it and no
        reader is pinned, the chain is folded into the base even past
        lagging consumers — those consumers then get ``None`` from
        :meth:`delta_entries` and fall back to full re-derivation.
    """

    def __init__(self, store: StoreSpec = None, *, max_log_entries: int = 100_000) -> None:
        base = create_store(store)
        self._base = base
        self._base_mutex: Optional[threading.RLock] = (
            None if base.concurrent_reads else threading.RLock()
        )
        #: guards every piece of mutable metadata below (writes, pins,
        #: consumer positions, net-delta cache, folding) — never held
        #: during snapshot reads
        self._lock = threading.RLock()
        self._epoch = 0
        self._floor = 0
        self._chain: List[Tuple[int, List[Entry]]] = []
        self._chain_len = 0
        self._pins: Dict[int, int] = {}
        self._consumers: Dict[int, int] = {}
        self._consumer_seq = 0
        self._net_cache: Dict[int, Dict[str, NetPair]] = {}
        self._known: Set[str] = set(base.relation_names())
        #: per-relation sorted epochs (> floor) at which the relation changed
        self._touches: Dict[str, List[int]] = {}
        #: per-relation count of change epochs already folded into the base
        self._touch_base: Dict[str, int] = {}
        self.max_log_entries = max_log_entries
        self.write_count = 0
        self.fold_count = 0

    # -- base access (serialised when the backend needs it) -----------------

    @contextmanager
    def _guard(self) -> Iterator[None]:
        mutex = self._base_mutex
        if mutex is None:
            yield
        else:
            with mutex:
                yield

    def base_contains(self, name: str, row: Row) -> bool:
        with self._guard():
            return self._base.contains(name, row)

    def base_count(self, name: str) -> int:
        with self._guard():
            return self._base.count(name)

    def base_scan(self, name: str) -> List[Row]:
        with self._guard():
            return list(self._base.scan(name))

    def base_lookup(self, name: str, positions: Sequence[int], key: Key) -> Sequence[Row]:
        with self._guard():
            return self._base.lookup(name, positions, key)

    def base_lookup_many(
        self, name: str, positions: Sequence[int], keys: Sequence[Key]
    ) -> Dict[Key, Sequence[Row]]:
        with self._guard():
            return self._base.lookup_many(name, positions, keys)

    def base_relation_names(self) -> List[str]:
        with self._guard():
            return self._base.relation_names()

    def base_relation_stats(self, name: str) -> RelationStats:
        with self._guard():
            return self._base.relation_stats(name)

    # -- write side ---------------------------------------------------------

    def ingest(self, facts: Mapping[str, Iterable[Row]]) -> int:
        """Insert many relations' rows in one epoch; return rows added."""
        return self.apply(facts, None)[0]

    def insert(self, relation: str, rows: Iterable[Row]) -> int:
        """Insert rows into one relation; return how many were new."""
        return self.apply({relation: rows}, None)[0]

    def retract(self, relation: str, rows: Iterable[Row]) -> int:
        """Remove rows from one relation; return how many were present."""
        return self.apply(None, {relation: rows})[1]

    def apply(
        self,
        inserts: Optional[Mapping[str, Iterable[Row]]] = None,
        retracts: Optional[Mapping[str, Iterable[Row]]] = None,
    ) -> Tuple[int, int, int]:
        """Apply one mutation batch atomically; return
        ``(inserted, retracted, epoch)``.

        Only *effective* changes are recorded (inserting a visible row or
        retracting an absent one is a no-op), so the chain entries are valid
        IVM deltas.  A batch with zero effective changes does not bump the
        epoch.
        """
        with self._lock:
            net = self._net_at(self._epoch)
            # visibility overlay for rows touched earlier in this same batch
            overlay: Dict[str, Dict[Row, bool]] = {}

            def visible(relation: str, row: Row) -> bool:
                touched = overlay.get(relation)
                if touched is not None and row in touched:
                    return touched[row]
                pair = net.get(relation)
                if pair is not None:
                    if row in pair[0]:
                        return True
                    if row in pair[1]:
                        return False
                return self.base_contains(relation, row)

            entries: List[Entry] = []
            inserted = retracted = 0
            for relation, rows in (inserts or {}).items():
                for row in rows:
                    row = tuple(row)
                    if visible(relation, row):
                        continue
                    entries.append((relation, row, 1))
                    overlay.setdefault(relation, {})[row] = True
                    inserted += 1
            for relation, rows in (retracts or {}).items():
                for row in rows:
                    row = tuple(row)
                    if not visible(relation, row):
                        continue
                    entries.append((relation, row, -1))
                    overlay.setdefault(relation, {})[row] = False
                    retracted += 1

            if entries:
                self._epoch += 1
                self._chain.append((self._epoch, entries))
                self._chain_len += len(entries)
                touched_relations = {relation for relation, _, _ in entries}
                for relation in touched_relations:
                    self._touches.setdefault(relation, []).append(self._epoch)
                self._known.update(touched_relations)
                self.write_count += 1
                if not self._pins:
                    self._maybe_fold()
            return inserted, retracted, self._epoch

    # -- read side ----------------------------------------------------------

    @property
    def epoch(self) -> int:
        """The current (latest committed) epoch."""
        return self._epoch

    def is_known(self, name: str) -> bool:
        """Whether ``name`` has ever existed in the shared EDB."""
        return name in self._known

    def pin(self) -> "EpochSnapshot":
        """Pin the current epoch; the returned snapshot keeps seeing exactly
        this state until :meth:`EpochSnapshot.release`."""
        with self._lock:
            epoch = self._epoch
            net = self._net_at(epoch)
            self._pins[epoch] = self._pins.get(epoch, 0) + 1
            return EpochSnapshot(self, epoch, net)

    def _unpin(self, epoch: int) -> None:
        with self._lock:
            remaining = self._pins.get(epoch, 0) - 1
            if remaining > 0:
                self._pins[epoch] = remaining
            else:
                self._pins.pop(epoch, None)
                if not self._pins:
                    self._maybe_fold()

    def pinned_epochs(self) -> Dict[int, int]:
        """Return ``{epoch: pin count}`` (diagnostics)."""
        with self._lock:
            return dict(self._pins)

    def version_at(self, name: str, epoch: int) -> int:
        """Monotone per-relation change counter as of ``epoch`` — the number
        of epochs ``<= epoch`` that changed ``name``.  Folding preserves the
        total, so this is a valid ``data_version`` for snapshot readers."""
        # Lock-free: callers hold a pin, which blocks folding; a writer
        # appending an epoch > `epoch` does not change the bisect result.
        count = self._touch_base.get(name, 0)
        touches = self._touches.get(name)
        if touches:
            count += bisect_right(touches, epoch)
        return count

    # -- IVM feed (serving workers) ------------------------------------------

    def register_consumer(self) -> int:
        """Register a delta consumer starting at the current epoch; entries
        above its position are retained across folds.  Returns a token."""
        with self._lock:
            token = self._consumer_seq
            self._consumer_seq += 1
            self._consumers[token] = self._epoch
            return token

    def set_consumed(self, token: int, epoch: int) -> None:
        """Record that consumer ``token`` has folded deltas up to ``epoch``."""
        with self._lock:
            if token in self._consumers and epoch > self._consumers[token]:
                self._consumers[token] = epoch

    def drop_consumer(self, token: int) -> None:
        with self._lock:
            self._consumers.pop(token, None)

    def delta_entries(self, since: int, upto: Optional[int] = None) -> Optional[List[Entry]]:
        """Effective entries for epochs in ``(since, upto]`` in commit order,
        or ``None`` when the chain was folded past ``since`` (the caller
        must fall back to full re-derivation)."""
        with self._lock:
            if upto is None:
                upto = self._epoch
            if since < self._floor:
                return None
            out: List[Entry] = []
            for epoch, entries in self._chain:
                if epoch <= since:
                    continue
                if epoch > upto:
                    break
                out.extend(entries)
            return out

    # -- folding -------------------------------------------------------------

    def compact(self) -> bool:
        """Fold the foldable chain prefix into the base store now.

        Returns ``True`` when the floor advanced; a pinned reader (which the
        fold would invalidate) makes this a no-op returning ``False``.
        """
        with self._lock:
            if self._pins:
                return False
            floor_before = self._floor
            self._maybe_fold()
            return self._floor > floor_before

    def _maybe_fold(self) -> None:
        # caller holds self._lock and has checked there are no pins
        if not self._chain:
            return
        if self._chain_len > self.max_log_entries:
            target = self._epoch  # overflow: laggard consumers lose retention
        else:
            target = self._epoch
            if self._consumers:
                target = min(target, min(self._consumers.values()))
        if target <= self._floor:
            return
        folded: List[Entry] = []
        kept: List[Tuple[int, List[Entry]]] = []
        for epoch, entries in self._chain:
            if epoch <= target:
                folded.extend(entries)
            else:
                kept.append((epoch, entries))
        with self._guard():
            with self._base.batch():
                for relation, row, sign in folded:
                    if sign > 0:
                        self._base.add(relation, row)
                    else:
                        self._base.remove(relation, row)
        for relation, touches in list(self._touches.items()):
            cut = bisect_right(touches, target)
            if cut:
                self._touch_base[relation] = self._touch_base.get(relation, 0) + cut
                del touches[:cut]
                if not touches:
                    del self._touches[relation]
        self._chain = kept
        self._chain_len = sum(len(entries) for _, entries in kept)
        self._floor = target
        self._net_cache.clear()
        self.fold_count += 1

    def _net_at(self, epoch: int) -> Dict[str, NetPair]:
        # caller holds self._lock
        net = self._net_cache.get(epoch)
        if net is not None:
            return net
        staged: Dict[str, NetPair] = {}
        for entry_epoch, entries in self._chain:
            if entry_epoch > epoch:
                break
            for relation, row, sign in entries:
                added, removed = staged.setdefault(relation, (set(), set()))
                if sign > 0:
                    if row in removed:
                        removed.discard(row)
                    else:
                        added.add(row)
                else:
                    if row in added:
                        added.discard(row)
                    else:
                        removed.add(row)
        net = {relation: pair for relation, pair in staged.items() if pair[0] or pair[1]}
        if len(self._net_cache) > 32:
            for cached in list(self._net_cache):
                if cached not in self._pins and cached != self._epoch:
                    del self._net_cache[cached]
        self._net_cache[epoch] = net
        return net

    # -- lifecycle / diagnostics ---------------------------------------------

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "epoch": self._epoch,
                "floor": self._floor,
                "chain_entries": self._chain_len,
                "pins": sum(self._pins.values()),
                "consumers": dict(self._consumers),
                "write_count": self.write_count,
                "fold_count": self.fold_count,
                "base": type(self._base).__name__,
            }

    def close(self) -> None:
        with self._lock:
            self._base.close()


class EpochSnapshot:
    """A read-only view of the shared EDB frozen at one pinned epoch.

    All methods are lock-free on the in-memory base (the net delta is
    immutable, and folding — the only base mutation besides the writer's
    effectiveness probes — cannot run while this snapshot holds its pin).
    """

    __slots__ = ("_shared", "epoch", "_net", "_released")

    def __init__(self, shared: SharedEDB, epoch: int, net: Dict[str, NetPair]) -> None:
        self._shared = shared
        self.epoch = epoch
        self._net = net
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._shared._unpin(self.epoch)

    def dirty(self, name: str) -> bool:
        """Whether ``name`` differs from the base store at this epoch."""
        return name in self._net

    def relation_names(self) -> List[str]:
        names = set(self._shared.base_relation_names())
        names.update(self._net)
        return list(names)

    def count(self, name: str) -> int:
        pair = self._net.get(name)
        base = self._shared.base_count(name)
        if pair is None:
            return base
        return base + len(pair[0]) - len(pair[1])

    def contains(self, name: str, row: Row) -> bool:
        pair = self._net.get(name)
        if pair is not None:
            if row in pair[0]:
                return True
            if row in pair[1]:
                return False
        return self._shared.base_contains(name, row)

    def scan(self, name: str) -> List[Row]:
        rows = self._shared.base_scan(name)
        pair = self._net.get(name)
        if pair is None:
            return rows
        added, removed = pair
        if removed:
            rows = [row for row in rows if row not in removed]
        rows.extend(added)
        return rows

    def lookup(self, name: str, positions: Sequence[int], key: Key) -> Sequence[Row]:
        pair = self._net.get(name)
        if pair is None:
            return self._shared.base_lookup(name, positions, key)
        added, removed = pair
        base_rows = self._shared.base_lookup(name, positions, key)
        rows = [row for row in base_rows if row not in removed] if removed else list(base_rows)
        if added:
            positions = tuple(positions)
            key = tuple(key)
            rows.extend(row for row in added if _key_matches(row, positions, key))
        return rows

    def lookup_many(
        self, name: str, positions: Sequence[int], keys: Sequence[Key]
    ) -> Dict[Key, Sequence[Row]]:
        if name not in self._net:
            return self._shared.base_lookup_many(name, positions, keys)
        result: Dict[Key, Sequence[Row]] = {}
        for key in keys:
            key = tuple(key)
            if key not in result:
                result[key] = self.lookup(name, positions, key)
        return result

    def relation_stats(self, name: str) -> RelationStats:
        if name not in self._net:
            return self._shared.base_relation_stats(name)
        return compute_stats(self.scan(name))

    def data_version(self, name: str) -> int:
        return self._shared.version_at(name, self.epoch)


class SnapshotView(StoreBackend):
    """A per-worker ``StoreBackend`` over a :class:`SharedEDB`.

    Shared-EDB relations are read through a pinned :class:`EpochSnapshot`
    (re-pinned per request via :meth:`begin_read`/:meth:`end_read`); derived
    relations and any transient EDB patches live in a private in-memory
    store, so a worker's writes are invisible to every other worker.

    Writes to a *shared* relation are absorbed locally: an ``add`` of a row
    the snapshot already shows is a no-op, a ``remove`` of a snapshot row
    shadows it in a mask set, and the patch bookkeeping dissolves as soon as
    the net local change returns to zero — which is exactly what the IVM
    union-state machinery does mid-maintenance (re-add retracted rows, run
    the pass, take them back out).  A relation with no live patch keeps the
    zero-copy fast path: reads delegate straight to the snapshot, and
    :meth:`cache_identity` reports the shared store so all workers share one
    columnar encoding per relation.
    """

    concurrent_reads = True  # each view is only ever used by its own worker

    def __init__(self, shared: SharedEDB) -> None:
        self._shared = shared
        self._local = FactStore()
        self._masked: Dict[str, Set[Row]] = {}
        self._patched: Set[str] = set()
        self._snap: Optional[EpochSnapshot] = None
        self._consumer = shared.register_consumer()

    # -- read-window lifecycle ----------------------------------------------

    def begin_read(self) -> int:
        """Pin the current shared epoch for the coming request; return it."""
        if self._snap is not None:
            self._snap.release()
        self._snap = self._shared.pin()
        return self._snap.epoch

    def end_read(self) -> None:
        """Release the pin.  Shared-relation reads raise until the next
        :meth:`begin_read` (they could otherwise observe a folded base)."""
        if self._snap is not None:
            self._snap.release()
            self._snap = None

    @property
    def pinned_epoch(self) -> Optional[int]:
        return self._snap.epoch if self._snap is not None else None

    def delta_since(self, epoch: int) -> Optional[List[Entry]]:
        """Shared-EDB entries between ``epoch`` and the pinned epoch, or
        ``None`` when that span was folded away."""
        snap = self._snapshot()
        return self._shared.delta_entries(epoch, snap.epoch)

    def mark_consumed(self, epoch: int) -> None:
        """Tell the shared store this worker has folded deltas up to
        ``epoch`` (releases chain retention)."""
        self._shared.set_consumed(self._consumer, epoch)

    def _snapshot(self) -> EpochSnapshot:
        snap = self._snap
        if snap is None:
            raise ExecutionError(
                "SnapshotView read outside a pinned window; call begin_read() first"
            )
        return snap

    def _is_shared(self, name: str) -> bool:
        return self._shared.is_known(name)

    def _tidy(self, name: str) -> None:
        # drop the patch bookkeeping once the local overlay nets to zero,
        # restoring the zero-copy snapshot fast path (and shared caching)
        masked = self._masked.get(name)
        if masked is not None and not masked:
            del self._masked[name]
            masked = None
        if masked is None and not self._local.count(name):
            self._patched.discard(name)

    # -- StoreBackend: mutation ---------------------------------------------

    def add(self, name: str, row: Row) -> bool:
        if not self._is_shared(name):
            return self._local.add(name, row)
        row = tuple(row)
        masked = self._masked.get(name)
        if masked and row in masked:
            masked.discard(row)
            self._tidy(name)
            return True
        if self._snapshot().contains(name, row):
            return False
        if self._local.add(name, row):
            self._patched.add(name)
            return True
        return False

    def add_many(self, name: str, rows: Iterable[Row]) -> int:
        if not self._is_shared(name):
            return self._local.add_many(name, rows)
        return sum(1 for row in rows if self.add(name, row))

    def remove(self, name: str, row: Row) -> bool:
        if not self._is_shared(name):
            return self._local.remove(name, row)
        row = tuple(row)
        if self._local.remove(name, row):
            self._tidy(name)
            return True
        masked = self._masked.get(name)
        if masked and row in masked:
            return False
        if self._snapshot().contains(name, row):
            self._masked.setdefault(name, set()).add(row)
            self._patched.add(name)
            return True
        return False

    def replace(self, name: str, rows: Iterable[Row]) -> None:
        if self._is_shared(name):
            raise ExecutionError(
                f"cannot replace shared relation {name!r} through a snapshot view"
            )
        self._local.replace(name, rows)

    def clear_relation(self, name: str) -> None:
        if self._is_shared(name):
            raise ExecutionError(
                f"cannot clear shared relation {name!r} through a snapshot view"
            )
        self._local.clear_relation(name)

    # -- StoreBackend: reads -------------------------------------------------

    def relation_names(self) -> List[str]:
        names = set(self._local.relation_names())
        if self._snap is not None:
            names.update(self._snap.relation_names())
        return list(names)

    def count(self, name: str) -> int:
        if not self._is_shared(name):
            return self._local.count(name)
        total = self._snapshot().count(name)
        if name in self._patched:
            total += self._local.count(name) - len(self._masked.get(name, ()))
        return total

    def contains(self, name: str, row: Row) -> bool:
        if not self._is_shared(name):
            return self._local.contains(name, row)
        if name in self._patched:
            if self._local.contains(name, row):
                return True
            masked = self._masked.get(name)
            if masked and row in masked:
                return False
        return self._snapshot().contains(name, row)

    def scan(self, name: str) -> List[Row]:
        if not self._is_shared(name):
            return self._local.scan(name)
        rows = self._snapshot().scan(name)
        if name not in self._patched:
            return rows
        masked = self._masked.get(name)
        if masked:
            rows = [row for row in rows if row not in masked]
        rows.extend(self._local.scan(name))
        return rows

    def lookup(self, name: str, positions: Sequence[int], key: Key) -> Sequence[Row]:
        if not self._is_shared(name):
            return self._local.lookup(name, positions, key)
        snap_rows = self._snapshot().lookup(name, positions, key)
        if name not in self._patched:
            return snap_rows
        masked = self._masked.get(name)
        rows = [row for row in snap_rows if row not in masked] if masked else list(snap_rows)
        rows.extend(self._local.lookup(name, positions, key))
        return rows

    def lookup_many(
        self, name: str, positions: Sequence[int], keys: Sequence[Key]
    ) -> Dict[Key, Sequence[Row]]:
        if self._is_shared(name):
            if name not in self._patched:
                return self._snapshot().lookup_many(name, positions, keys)
            result: Dict[Key, Sequence[Row]] = {}
            for key in keys:
                key = tuple(key)
                if key not in result:
                    result[key] = self.lookup(name, positions, key)
            return result
        return self._local.lookup_many(name, positions, keys)

    # -- StoreBackend: statistics / caching ----------------------------------

    @property
    def index_count(self) -> int:
        return self._local.index_count

    @property
    def index_build_count(self) -> int:
        return self._local.index_build_count

    def relation_stats(self, name: str) -> RelationStats:
        if not self._is_shared(name):
            return self._local.relation_stats(name)
        if name not in self._patched:
            return self._snapshot().relation_stats(name)
        return compute_stats(self.scan(name))

    def data_version(self, name: str) -> Optional[int]:
        if not self._is_shared(name):
            return self._local.data_version(name)
        if name in self._patched:
            return None  # patched: disable executor-level caching outright
        return self._snapshot().data_version(name)

    def cache_identity(self, name: str) -> Tuple[int, object]:
        if self._is_shared(name) and name not in self._patched:
            # all workers' views share one encoding of a clean shared relation
            return (id(self._shared), self._shared)
        return (id(self), self)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self.end_read()
        self._shared.drop_consumer(self._consumer)
