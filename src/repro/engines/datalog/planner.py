"""Compilation of DLIR rules into executable join plans.

The seed evaluator re-derived its join strategy on every rule application:
atom order was recomputed, and comparisons/negations were rediscovered by
scanning a "pending" list at every level of the join.  This module performs
that work once per ``(rule, delta_index)`` pair and records the result as a
:class:`RulePlan`:

* **join order** — when a statistics snapshot is supplied (the engine takes
  one per fixpoint iteration), body atoms are ordered by an explicit
  per-join-step **cost function**: the estimated fan-out of probing the
  atom with its currently-bound positions, ``|relation| / distinct(bound
  columns)`` (:meth:`RelationStats.fanout`), ties broken towards more
  shared variables, more bound positions, then the smaller relation.
  Without statistics the original greedy heuristic (shared variables, bound
  positions, raw size) remains as the fallback.  For semi-naive evaluation
  the delta atom always comes first, so each delta row is enumerated
  exactly once per application.
* **index positions** — for each atom the plan precomputes which argument
  positions are fixed (constants and already-bound variables) and how to
  assemble the lookup key from the current bindings, so the executor never
  inspects terms at run time.
* **guards** — each comparison is scheduled at the earliest join step where
  its variables are bound (``=`` against a single unbound variable becomes
  an *assignment* that binds it); each negated atom is compiled to its index
  probe and scheduled at the earliest step where every eventually-bound
  variable it mentions is available.  Unbound variables in a negation are
  existential, exactly as in the seed evaluator.

A plan built from statistics records the cardinalities it was costed on
(``stats_basis``) and the epoch it was built in (``stats_epoch``).
:class:`PlanCache` — which the engine threads through the stratum loop so
recursive rules reuse their plans across fixpoint iterations — uses the
basis for **adaptive re-planning**: when a fresh snapshot shows any basis
relation drifted by the re-plan threshold (default 10×, see
:func:`~repro.engines.datalog.statistics.resolve_replan_threshold`), the
cached plan is rebuilt against current statistics and the cache's stats
epoch advances.  Plan identity changes but plan *structure* only changes
when the join order actually moved, so the compiled executor's
structure-keyed closure cache regenerates code only when it must.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.common.errors import ExecutionError
from repro.dlir.core import (
    Atom,
    Comparison,
    Const,
    NegatedAtom,
    Param,
    Rule,
    Term,
    Var,
    Wildcard,
    term_variables,
)
from repro.engines.datalog.statistics import (
    RelationStats,
    StatsSnapshot,
    drift_ratio,
    resolve_replan_threshold,
)
from repro.engines.datalog.storage import StoreBackend

# Guard operations are tagged tuples kept deliberately small for the hot loop:
#   ("assign", var_name, term)  -- bind var_name to the evaluated term
#   ("check", comparison)       -- evaluate both sides and compare
GuardOp = Tuple


@dataclass(frozen=True)
class CompiledNegation:
    """A negated atom compiled to an index probe.

    ``positions``/``terms`` are the argument positions whose value will be
    known when the guard runs (parallel tuples); the remaining positions are
    existential.  The check fails when any stored fact matches the probe.
    """

    relation: str
    positions: Tuple[int, ...]
    terms: Tuple[Term, ...]


@dataclass(frozen=True)
class Guard:
    """Assignments, comparison checks and negation probes between two joins."""

    ops: Tuple[GuardOp, ...] = ()
    negations: Tuple[CompiledNegation, ...] = ()

    def is_empty(self) -> bool:
        """Return whether the guard does nothing."""
        return not self.ops and not self.negations


@dataclass(frozen=True)
class JoinStep:
    """One atom of the join: probe the relation, extend the bindings.

    ``key_positions`` are the argument positions fixed before this step runs;
    ``key_sources`` (parallel) say how to build the probe key: ``(True,
    name)`` reads the binding of variable ``name``, ``(False, value)`` is a
    constant.  ``bind_positions`` are the positions whose value binds a new
    variable; ``eq_positions`` are pairs of positions that must be equal
    (repeated fresh variables within the atom).
    """

    body_index: int
    relation: str
    key_positions: Tuple[int, ...]
    key_sources: Tuple[Tuple[bool, object], ...]
    bind_positions: Tuple[Tuple[int, str], ...]
    eq_positions: Tuple[Tuple[int, int], ...]
    guard: Guard


@dataclass(frozen=True)
class RulePlan:
    """The compiled evaluation strategy for one rule.

    ``delta_index`` is the body position (if any) that reads the semi-naive
    delta instead of the full relation.  ``unresolved`` holds comparisons
    whose variables are never bound; reaching the end of the join with such
    comparisons outstanding is an unsafe-rule error, raised at run time to
    match the seed evaluator (a rule whose joins produce no rows never
    triggers it).

    The trailing fields are **planning provenance**, excluded from
    equality/hash so the compiled executor's structure-keyed closure cache
    is untouched by re-planning that lands on the same join order:

    * ``stats_basis`` — the ``(relation, cardinality)`` pairs the cost
      model consumed (``None`` for greedy-fallback plans); the drift check
      compares these against fresh snapshots.
    * ``stats_epoch`` — the :class:`PlanCache` epoch the plan was built in
      (bumped on every re-plan).
    * ``step_fanouts`` — the cost model's estimated fan-out per join step,
      parallel to ``steps`` (for ``explain`` output).
    * ``cost_estimate`` — estimated total intermediate rows across the
      join (the sum of the running fan-out products).
    """

    rule: Rule
    delta_index: Optional[int]
    prelude: Guard
    steps: Tuple[JoinStep, ...]
    unresolved: Tuple[Comparison, ...]
    stats_basis: Optional[Tuple[Tuple[str, int], ...]] = field(
        default=None, compare=False
    )
    stats_epoch: int = field(default=0, compare=False)
    step_fanouts: Optional[Tuple[float, ...]] = field(default=None, compare=False)
    cost_estimate: Optional[float] = field(default=None, compare=False)


class _GuardBuilder:
    """Accumulates guard operations for one scheduling point."""

    def __init__(self) -> None:
        self.ops: List[GuardOp] = []
        self.negations: List[CompiledNegation] = []

    def build(self) -> Guard:
        return Guard(ops=tuple(self.ops), negations=tuple(self.negations))


def _term_vars_bound(term: Term, bound: Set[str]) -> bool:
    return all(name in bound for name in term_variables(term))


def _schedule_comparisons(
    pending: List[Comparison], bound: Set[str], builder: _GuardBuilder
) -> List[Comparison]:
    """Move every ready comparison from ``pending`` into ``builder``.

    Runs to fixpoint: a ``=`` with exactly one unbound variable side becomes
    an assignment (binding that variable), which can make further
    comparisons ready.  Returns the comparisons that are still pending.
    """
    current = pending
    progress = True
    while progress:
        progress = False
        remaining: List[Comparison] = []
        for comparison in current:
            left_bound = _term_vars_bound(comparison.left, bound)
            right_bound = _term_vars_bound(comparison.right, bound)
            if left_bound and right_bound:
                builder.ops.append(("check", comparison))
                progress = True
            elif (
                comparison.op == "="
                and left_bound
                and isinstance(comparison.right, Var)
            ):
                builder.ops.append(("assign", comparison.right.name, comparison.left))
                bound.add(comparison.right.name)
                progress = True
            elif (
                comparison.op == "="
                and right_bound
                and isinstance(comparison.left, Var)
            ):
                builder.ops.append(("assign", comparison.left.name, comparison.right))
                bound.add(comparison.left.name)
                progress = True
            else:
                remaining.append(comparison)
        current = remaining
    return current


def _atom_selectivity(
    atom: Atom,
    body_index: int,
    bound: Set[str],
    store: StoreBackend,
    delta_index: Optional[int],
    delta_size: int,
) -> Tuple:
    """Rank candidate atoms: most shared variables, most bound positions,
    smallest relation.  The greedy fallback when no statistics are given."""
    size = delta_size if body_index == delta_index else store.count(atom.relation)
    shared = 0
    bound_positions = 0
    for term in atom.terms:
        if isinstance(term, (Const, Param)):
            bound_positions += 1
        elif isinstance(term, Var) and term.name in bound:
            shared += 1
            bound_positions += 1
    return (-shared, -bound_positions, size)


def _bound_positions(atom: Atom, bound: Set[str]) -> Tuple[List[int], int, int]:
    """Return (positions fixed before the probe, shared-var count, bound count)."""
    positions: List[int] = []
    shared = 0
    for position, term in enumerate(atom.terms):
        if isinstance(term, (Const, Param)):
            positions.append(position)
        elif isinstance(term, Var) and term.name in bound:
            positions.append(position)
            shared += 1
    return positions, shared, len(positions)


def _atom_cost(
    atom: Atom,
    body_index: int,
    bound: Set[str],
    stats: Dict[str, RelationStats],
    store: StoreBackend,
) -> Tuple:
    """Rank candidate atoms by estimated per-probe fan-out.

    The primary key is the cost function of the whole planner: probing the
    atom with its currently-bound columns is expected to return
    ``|relation| / distinct(bound columns)`` rows per input row
    (:meth:`RelationStats.fanout`).  Ties prefer more shared variables,
    more bound positions, the smaller relation, then body order — all
    deterministic.
    """
    entry = stats.get(atom.relation)
    if entry is None:
        # The engine's snapshots cover every body relation, but direct
        # plan_rule callers may pass partial maps — backfill from the store
        # so a missing entry never reads as "empty relation".
        entry = store.relation_stats(atom.relation)
        stats[atom.relation] = entry
    positions, shared, bound_count = _bound_positions(atom, bound)
    fanout = entry.fanout(positions)
    return (fanout, -shared, -bound_count, entry.cardinality, body_index)


def _compile_step(
    body_index: int, atom: Atom, bound: Set[str]
) -> Tuple[JoinStep, Set[str]]:
    """Compile one atom given the variables bound before it runs."""
    key_positions: List[int] = []
    key_sources: List[Tuple[bool, object]] = []
    bind_positions: List[Tuple[int, str]] = []
    eq_positions: List[Tuple[int, int]] = []
    first_occurrence: Dict[str, int] = {}
    for position, term in enumerate(atom.terms):
        if isinstance(term, Wildcard):
            continue
        if isinstance(term, Const):
            key_positions.append(position)
            key_sources.append((False, term.value))
        elif isinstance(term, Param):
            # Late-bound: the probe key reads the parameter's reserved
            # binding (``$name`` — the prefix keeps it disjoint from rule
            # variables, which are identifiers).  The plan itself stays
            # binding-independent, so one plan serves every run.
            key_positions.append(position)
            key_sources.append((True, f"${term.name}"))
        elif isinstance(term, Var):
            if term.name in bound:
                key_positions.append(position)
                key_sources.append((True, term.name))
            elif term.name in first_occurrence:
                eq_positions.append((first_occurrence[term.name], position))
            else:
                first_occurrence[term.name] = position
                bind_positions.append((position, term.name))
        else:
            raise ExecutionError(f"unexpected term {term!r} in body atom {atom}")
    step = JoinStep(
        body_index=body_index,
        relation=atom.relation,
        key_positions=tuple(key_positions),
        key_sources=tuple(key_sources),
        bind_positions=tuple(bind_positions),
        eq_positions=tuple(eq_positions),
        guard=Guard(),  # replaced after guard scheduling
    )
    return step, set(first_occurrence)


def _compile_negation(
    negated: NegatedAtom, final_bound: Set[str]
) -> Tuple[CompiledNegation, Set[str]]:
    """Compile a negated atom against the eventually-bound variable set.

    Returns the compiled probe and the variables it needs bound before it
    can run.  Bare variables that are never bound are existential and
    dropped from the probe (the seed semantics).
    """
    atom = negated.atom
    positions: List[int] = []
    terms: List[Term] = []
    required: Set[str] = set()
    for position, term in enumerate(atom.terms):
        if isinstance(term, Wildcard):
            continue
        if isinstance(term, Var) and term.name not in final_bound:
            continue
        positions.append(position)
        terms.append(term)
        required.update(term_variables(term))
    compiled = CompiledNegation(
        relation=atom.relation, positions=tuple(positions), terms=tuple(terms)
    )
    return compiled, required


def plan_rule(
    rule: Rule,
    store: StoreBackend,
    delta_index: Optional[int] = None,
    delta_size: int = 0,
    stats: Optional[StatsSnapshot] = None,
    stats_epoch: int = 0,
) -> RulePlan:
    """Compile ``rule`` into a :class:`RulePlan`.

    ``stats`` (relation name → :class:`RelationStats`) switches join
    ordering to the cost model and records the plan's ``stats_basis`` for
    drift detection; without it the greedy size heuristic applies and the
    plan never triggers re-planning.  ``delta_index``/``delta_size``
    identify the body atom restricted to the semi-naive delta (it is forced
    to the front of the join order either way).
    """
    remaining_atoms = [
        (index, literal)
        for index, literal in enumerate(rule.body)
        if isinstance(literal, Atom)
    ]
    use_cost = stats is not None
    stats_map: Dict[str, RelationStats] = dict(stats) if stats is not None else {}
    bound: Set[str] = set()
    pending = list(rule.comparisons())

    prelude_builder = _GuardBuilder()
    pending = _schedule_comparisons(pending, bound, prelude_builder)

    # Join ordering interleaved with comparison scheduling, so each step's
    # key positions reflect every variable bound before it runs (including
    # variables bound by ``=`` assignments).
    steps: List[JoinStep] = []
    step_builders: List[_GuardBuilder] = []
    bound_after: List[Set[str]] = []  # bound set after each step's guard
    step_fanouts: List[float] = []
    while remaining_atoms:
        chosen = None
        chosen_fanout: Optional[float] = None
        if not steps and delta_index is not None:
            chosen = next(
                (entry for entry in remaining_atoms if entry[0] == delta_index), None
            )
            if chosen is not None:
                chosen_fanout = float(delta_size)
        if chosen is None:
            if use_cost:
                chosen = min(
                    remaining_atoms,
                    key=lambda entry: _atom_cost(
                        entry[1], entry[0], bound, stats_map, store
                    ),
                )
                chosen_fanout = _atom_cost(
                    chosen[1], chosen[0], bound, stats_map, store
                )[0]
            else:
                chosen = min(
                    remaining_atoms,
                    key=lambda entry: _atom_selectivity(
                        entry[1], entry[0], bound, store, delta_index, delta_size
                    ),
                )
        remaining_atoms.remove(chosen)
        body_index, atom = chosen
        step, fresh = _compile_step(body_index, atom, bound)
        bound.update(fresh)
        builder = _GuardBuilder()
        pending = _schedule_comparisons(pending, bound, builder)
        steps.append(step)
        step_builders.append(builder)
        bound_after.append(set(bound))
        if use_cost:
            step_fanouts.append(chosen_fanout if chosen_fanout is not None else 0.0)

    # Schedule each negation at the earliest point where every
    # eventually-bound variable it mentions is available.
    final_bound = bound
    prelude_bound = _prelude_bound_vars(prelude_builder)
    for negated in rule.negated_atoms():
        compiled, required = _compile_negation(negated, final_bound)
        target: Optional[_GuardBuilder] = None
        if required <= prelude_bound:
            target = prelude_builder
        else:
            for index, bound_set in enumerate(bound_after):
                if required <= bound_set:
                    target = step_builders[index]
                    break
        if target is None:
            # Variables inside an arithmetic negation term are never bound:
            # attach to the last guard so evaluate_term raises, matching the
            # seed's end-of-body behaviour.
            target = step_builders[-1] if step_builders else prelude_builder
        target.negations.append(compiled)

    compiled_steps = tuple(
        JoinStep(
            body_index=step.body_index,
            relation=step.relation,
            key_positions=step.key_positions,
            key_sources=step.key_sources,
            bind_positions=step.bind_positions,
            eq_positions=step.eq_positions,
            guard=builder.build(),
        )
        for step, builder in zip(steps, step_builders)
    )
    stats_basis: Optional[Tuple[Tuple[str, int], ...]] = None
    cost_estimate: Optional[float] = None
    if use_cost:
        basis_relations = {step.relation for step in compiled_steps}
        stats_basis = tuple(
            sorted(
                (relation, stats_map[relation].cardinality)
                for relation in basis_relations
                if relation in stats_map
            )
        )
        # Total estimated intermediate rows: the sum of the running fan-out
        # products after each step (the quantity the greedy order minimises).
        running = 1.0
        cost_estimate = 0.0
        for fanout in step_fanouts:
            running *= fanout
            cost_estimate += running
    return RulePlan(
        rule=rule,
        delta_index=delta_index,
        prelude=prelude_builder.build(),
        steps=compiled_steps,
        unresolved=tuple(pending),
        stats_basis=stats_basis,
        stats_epoch=stats_epoch,
        step_fanouts=tuple(step_fanouts) if use_cost else None,
        cost_estimate=cost_estimate,
    )


def _prelude_bound_vars(builder: _GuardBuilder) -> Set[str]:
    """Variables bound by the prelude's assignments."""
    return {op[1] for op in builder.ops if op[0] == "assign"}


class PlanCache:
    """Caches :class:`RulePlan` objects per ``(rule, delta_index)``, with
    statistics-driven invalidation.

    Keys use object identity: the engine owns its program's rule objects for
    its whole lifetime, and identity keeps hashing O(1) regardless of rule
    size.  Rule references are retained so ids cannot be recycled — this
    also covers the incremental maintainer's synthesised delta-variant
    rules (candidate and positivised-negation rewrites), which are built
    once per maintainer and plan through this cache exactly like the
    program's own rules, drift checks and adaptive re-planning included.
    Short-lived throwaway rules (e.g. head-bound backward checks during
    delete-rederive) must NOT plan through the cache: their ids can be
    recycled after garbage collection — they pass ``plan=None`` to the
    evaluator instead.

    **Adaptive re-planning.**  When :meth:`plan_for` receives a statistics
    snapshot and the cached plan's ``stats_basis`` shows any relation
    drifted by ``replan_threshold`` (a factor; default 10×, overridable via
    ``REPRO_REPLAN_THRESHOLD`` — ``1`` re-plans on every snapshot,
    ``inf`` never), the entry is rebuilt against the current snapshot and
    the cache's ``stats_epoch`` advances.  The fresh plan is a *new object*
    (so the compiled executor's identity memo cannot serve stale code) but
    equal-by-structure to the old one unless the join order actually moved
    — which is exactly when the structure-keyed closure cache regenerates.
    ``replan_count`` / ``plan_build_count`` make the mechanism observable.
    """

    def __init__(self, replan_threshold: Optional[float] = None) -> None:
        self._plans: Dict[Tuple[int, Optional[int]], RulePlan] = {}
        self._rules: Dict[int, Rule] = {}
        # Each engine owns one PlanCache and a serving worker owns its
        # engines, so contention is nil — the lock only protects the
        # introspection surfaces (explain/stats readers on other threads)
        # from observing a half-built entry.
        self._lock = threading.RLock()
        #: drift factor that triggers a re-plan (resolved from the
        #: environment when not given explicitly)
        self.replan_threshold = resolve_replan_threshold(replan_threshold)
        #: plans built from scratch (first builds + re-plans)
        self.plan_build_count = 0
        #: cache entries rebuilt because their statistics basis drifted
        self.replan_count = 0
        #: monotone version, bumped on every re-plan
        self.stats_epoch = 0

    def plan_for(
        self,
        rule: Rule,
        store: StoreBackend,
        delta_index: Optional[int] = None,
        delta_size: int = 0,
        stats: Optional[StatsSnapshot] = None,
    ) -> RulePlan:
        """Return the plan for ``(rule, delta_index)``, building it on first
        use and re-building it when ``stats`` drifted from its basis."""
        key = (id(rule), delta_index)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                if stats is None or not self.drifted(plan, stats):
                    return plan
                self.stats_epoch += 1
                self.replan_count += 1
            plan = plan_rule(
                rule,
                store,
                delta_index,
                delta_size,
                stats=stats,
                stats_epoch=self.stats_epoch,
            )
            self.plan_build_count += 1
            self._plans[key] = plan
            self._rules[id(rule)] = rule
            return plan

    def drifted(self, plan: RulePlan, stats: StatsSnapshot) -> bool:
        """Whether any relation the plan was costed on moved past the
        threshold (greedy-fallback plans, with no basis, never drift)."""
        basis = plan.stats_basis
        if basis is None or self.replan_threshold == float("inf"):
            return False
        for relation, planned_cardinality in basis:
            entry = stats.get(relation)
            current = entry.cardinality if entry is not None else 0
            if drift_ratio(current, planned_cardinality) >= self.replan_threshold:
                return True
        return False

    def plans(self) -> List[RulePlan]:
        """Return every cached plan (for the engine's explain surface)."""
        with self._lock:
            return list(self._plans.values())

    def __len__(self) -> int:
        return len(self._plans)
