"""Fact storage for the Datalog engine.

Storage is **pluggable**: the plan executor only ever touches a store through
the narrow :class:`StoreBackend` protocol (insert / remove / scan / lookup /
lookup_many / len plus batching, index-statistics and relation-statistics
hooks — ``relation_stats`` feeds the planner's cost model), so compiled
:class:`~repro.engines.datalog.planner.RulePlan`\\ s run unchanged on any
backend.  Two backends ship with the repository:

* :class:`FactStore` (this module) — the in-memory backend: relations are
  sets of tuples with incrementally maintained hash indexes;
* :class:`~repro.engines.datalog.storage_sqlite.SQLiteFactStore` — a
  SQLite-backed store (in-memory or on disk) that lifts the memory ceiling
  for large EDBs.

:func:`create_store` resolves a backend specification string
(``"memory"``, ``"sqlite"``, ``"sqlite:/path/to.db"``; default from the
``REPRO_STORE`` environment variable) into a backend instance.

For the in-memory store, joins go through hash indexes: an index for
relation ``R`` on positions ``(0, 2)`` maps each ``(value0, value2)`` key to
the list of tuples carrying those values.  Indexes are built lazily on first
lookup and are then maintained **incrementally**: insertions and removals
update every existing index in place, so a semi-naive fixpoint loop that
grows a relation on each iteration never pays for an index rebuild.  The
number of from-scratch index constructions is exposed as
``index_build_count``; with incremental maintenance it equals the number of
distinct ``(relation, positions)`` indexes ever requested (each is built
exactly once), which the benchmarks assert.

``maintain_indexes=False`` restores the seed behaviour — indexes are dropped
whenever the relation changes and rebuilt on the next lookup — and exists so
benchmarks can measure the cost of that strategy.

:class:`DeltaView` wraps the per-iteration delta of a relation for semi-naive
evaluation.  It offers the same ``lookup``/``scan`` interface as a stored
relation (with its own lazily built mini-indexes), so the evaluator can treat
"read the delta" and "read the full relation" uniformly.  Deltas always stay
in memory regardless of the backend storing the full relations.
"""

from __future__ import annotations

import abc
import os
import threading
from collections import defaultdict
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.engines.datalog.statistics import (
    RelationStats,
    StatsRegistry,
    compute_stats,
)

Row = Tuple
Key = Tuple
Positions = Tuple[int, ...]


class StoreBackend(abc.ABC):
    """The storage contract the Datalog engine evaluates against.

    The plan executor needs only :meth:`lookup` and :meth:`scan`; the engine
    additionally inserts (:meth:`add` / :meth:`add_many`), removes
    (subsumption), and counts.  Everything else — how tuples are laid out,
    where indexes live — is backend private.

    **Index statistics are part of the contract.**  Every backend must keep
    :attr:`index_build_count` (number of from-scratch index constructions)
    and :attr:`index_count` (number of distinct ``(relation, positions)``
    indexes currently materialised) truthful, so benchmarks asserting
    "no index is ever rebuilt inside the fixpoint" fail loudly instead of
    silently passing on a backend that never reports builds.

    **Batching hooks.**  The engine brackets every fixpoint insert batch
    (and the initial EDB load) with :meth:`begin_batch` / :meth:`end_batch`.
    The in-memory store ignores them; transactional backends use them to
    batch writes (one transaction per fixpoint iteration for SQLite).
    """

    #: number of from-scratch index constructions (monotone counter).
    #: Required of every backend — benchmarks assert on it.
    index_build_count: int = 0

    #: whether concurrent *reads* from several threads are safe without
    #: external serialisation.  The in-memory store is (CPython dict/set
    #: reads are atomic and its lazy index builds are lock-guarded); the
    #: SQLite store is not (one connection, and reads can create indexes),
    #: so the serving layer's :class:`~repro.engines.datalog.storage_shared.SharedEDB`
    #: wraps every access to a non-concurrent base in one mutex.
    concurrent_reads: bool = False

    # -- base operations ---------------------------------------------------

    @abc.abstractmethod
    def relation_names(self) -> List[str]:
        """Return the names of all stored relations."""

    @abc.abstractmethod
    def count(self, name: str) -> int:
        """Return the number of tuples in ``name``."""

    @abc.abstractmethod
    def contains(self, name: str, row: Row) -> bool:
        """Return whether ``row`` is present in relation ``name``."""

    @abc.abstractmethod
    def add(self, name: str, row: Row) -> bool:
        """Insert ``row``; return ``True`` when it was new."""

    @abc.abstractmethod
    def add_many(self, name: str, rows: Iterable[Row]) -> int:
        """Insert many rows; return how many were new."""

    @abc.abstractmethod
    def remove(self, name: str, row: Row) -> bool:
        """Remove ``row`` if present; return ``True`` when it was removed.

        The return value is the *effective* delta (used by subsumption and
        by the session's mutation log feeding incremental maintenance):
        removing an absent row returns ``False`` and changes nothing.
        """

    @abc.abstractmethod
    def replace(self, name: str, rows: Iterable[Row]) -> None:
        """Replace the whole relation with ``rows``."""

    # -- indexed access ----------------------------------------------------

    @abc.abstractmethod
    def lookup(self, name: str, positions: Sequence[int], key: Key) -> Sequence[Row]:
        """Return the tuples of ``name`` whose ``positions`` equal ``key``.

        An empty ``positions`` means "every tuple".  Backends index the
        requested position set lazily and keep the index current afterwards.
        """

    def lookup_many(
        self, name: str, positions: Sequence[int], keys: Sequence[Key]
    ) -> Dict[Key, Sequence[Row]]:
        """Batched :meth:`lookup`: resolve many probe keys in one call.

        Returns a dict mapping each *distinct* key in ``keys`` (as a tuple)
        to the rows matching it — absent keys map to an empty sequence, and
        duplicate keys collapse to one entry.  Semantically identical to a
        loop of :meth:`lookup` calls; backends override it to answer the
        whole batch at once (one index sweep in memory, one SQL query on
        SQLite).  The compiled plan executor hands each join step's entire
        probe-key batch to this method.
        """
        result: Dict[Key, Sequence[Row]] = {}
        for key in keys:
            key = tuple(key)
            if key not in result:
                result[key] = self.lookup(name, positions, key)
        return result

    @abc.abstractmethod
    def scan(self, name: str) -> List[Row]:
        """Return every tuple of ``name`` as a list."""

    @property
    @abc.abstractmethod
    def index_count(self) -> int:
        """Return how many distinct ``(relation, positions)`` indexes exist."""

    # -- statistics --------------------------------------------------------

    def relation_stats(self, name: str) -> RelationStats:
        """Return cardinality and per-column distinct counts for ``name``.

        **Part of the contract**, like the index counters: the engine
        snapshots these each fixpoint iteration to drive cost-based join
        ordering and adaptive re-planning, so the counts must stay truthful
        across inserts and removals.  This generic implementation recomputes
        from :meth:`scan` (O(rows)); backends override it — the in-memory
        store maintains the counts incrementally on its write path, the
        SQLite store answers with one aggregate query cached until the next
        write.
        """
        return compute_stats(self.scan(name))

    def stats_snapshot(self, names: Iterable[str]) -> Dict[str, RelationStats]:
        """Return :meth:`relation_stats` for each of ``names`` (the shape the
        planner's cost model consumes)."""
        return {name: self.relation_stats(name) for name in names}

    def data_version(self, name: str) -> Optional[int]:
        """Return a counter that changes whenever relation ``name`` changes.

        The columnar executor keys its per-relation column encodings on this
        value, so it must bump on every *effective* mutation (a no-op add or
        remove must NOT bump it — over-bumping silently destroys column
        reuse across the fixpoint iterations that read a relation the rule
        never writes).  Backends that cannot track this cheaply return
        ``None``, which simply disables column caching for their relations.
        """
        return None

    def changes_since(
        self, name: str, version: int
    ) -> Optional[Tuple[List[Row], List[Row]]]:
        """Return the net ``(added, removed)`` rows of ``name`` since
        ``version`` (a value previously returned by :meth:`data_version`).

        Opposite changes of the same row cancel, so ``added`` rows are
        present now and absent at ``version``, and ``removed`` rows the
        reverse — exactly the delta a cache keyed on ``data_version`` must
        apply to catch up.  Returns ``None`` when the span is unknown (the
        backend keeps no log, the log was truncated past ``version``, or
        the relation was wholesale-replaced in between); the caller must
        then rebuild from :meth:`scan`.  Backends without a change log
        simply inherit this ``None`` default.
        """
        return None

    def cache_identity(self, name: str) -> Tuple[int, object]:
        """Return ``(key, pin)`` identifying the storage backing ``name``.

        Executor-level caches (the columnar executor's encoded relation
        columns) key their entries on ``key`` and hold ``pin`` to keep the
        backing object alive, so that two store *views* exposing the same
        underlying relation share one cache entry.  Plain backends are their
        own backing storage; the serving layer's
        :class:`~repro.engines.datalog.storage_shared.SnapshotView` forwards
        clean shared-EDB relations to the shared store's identity so all
        worker views reuse one encoding.  ``data_version`` values must be
        comparable across every view that reports the same identity.
        """
        return (id(self), self)

    # -- IDB/EDB partition --------------------------------------------------

    def mark_idb(self, names: Iterable[str]) -> None:
        """Record ``names`` as derived (IDB) relations of this store.

        The partition is additive — a store shared by several prepared
        queries accumulates every query's derived relations — and purely
        advisory bookkeeping: it lets sessions distinguish the ingested EDB
        (kept hot across runs) from derived results (cleared and lazily
        re-derived after parameter re-binding or mutation).
        """
        marks = getattr(self, "_idb_marks", None)
        if marks is None:
            marks = set()
            self._idb_marks = marks
        marks.update(names)

    def idb_marks(self) -> Set[str]:
        """Return the relations marked as IDB (derived) on this store."""
        return set(getattr(self, "_idb_marks", ()) or ())

    def clear_relation(self, name: str) -> None:
        """Remove every tuple of ``name``, keeping its indexes *registered*.

        Unlike :meth:`replace` with no rows, clearing must not force index
        rebuilds: an emptied index is still a valid index over the emptied
        relation, so warm re-derivation after a session reset pays zero
        ``index_build_count``.  This generic implementation falls back to
        :meth:`replace`; both shipped backends override it.
        """
        self.replace(name, [])

    def clear_idb(self, names: Optional[Iterable[str]] = None) -> None:
        """Clear the relations in ``names`` (default: every marked IDB).

        The engine's :meth:`~repro.engines.datalog.engine.DatalogEngine.reset`
        passes its own program's IDB names so that several prepared queries
        sharing one store never wipe each other's extensional data.
        """
        targets = self.idb_marks() if names is None else names
        for name in targets:
            self.clear_relation(name)

    # -- hooks (default no-ops) --------------------------------------------

    def begin_batch(self) -> None:
        """Called before a batch of inserts (one fixpoint iteration)."""

    def end_batch(self) -> None:
        """Called after a batch of inserts completes."""

    @contextmanager
    def batch(self) -> Iterator[None]:
        """Bracket a batch of inserts with :meth:`begin_batch`/:meth:`end_batch`."""
        self.begin_batch()
        try:
            yield
        finally:
            self.end_batch()

    def close(self) -> None:
        """Release backend resources (files, connections)."""

    # -- conveniences ------------------------------------------------------

    def __len__(self) -> int:
        """Return the total number of stored facts across all relations."""
        return sum(self.count(name) for name in self.relation_names())

    def snapshot(self) -> Dict[str, Set[Row]]:
        """Return a copy of all relations as sets (for debugging/tests)."""
        return {name: set(self.scan(name)) for name in self.relation_names()}


#: What :func:`create_store` and the engine accept as a backend selection.
StoreSpec = Union[str, StoreBackend, None]


def create_store(
    spec: StoreSpec = None, *, maintain_indexes: bool = True
) -> StoreBackend:
    """Resolve a backend specification into a :class:`StoreBackend`.

    ``spec`` may be an existing backend instance (returned as-is), one of the
    strings ``"memory"``, ``"sqlite"`` (private in-memory SQLite database) or
    ``"sqlite:PATH"`` (file-backed), or ``None`` — which reads the
    ``REPRO_STORE`` environment variable and defaults to ``"memory"``.  The
    environment hook is what lets CI run the whole test suite against the
    SQLite backend without touching any call site.

    ``maintain_indexes`` only applies when this factory *constructs* an
    in-memory store (the seed invalidate-on-growth strategy exists there
    purely for benchmarking).  It is ignored for SQLite (SQLite always
    maintains its own indexes) and for an already-constructed backend
    instance, which is returned exactly as configured by its creator —
    callers combining ``DatalogEngine(..., incremental_indexes=False)``
    with an explicit instance must build that instance with
    ``FactStore(maintain_indexes=False)`` themselves.
    """
    if isinstance(spec, StoreBackend):
        return spec
    if spec is None:
        spec = os.environ.get("REPRO_STORE") or "memory"
    if not isinstance(spec, str):
        raise ValueError(f"unsupported fact-store specification {spec!r}")
    if spec == "memory":
        return FactStore(maintain_indexes=maintain_indexes)
    if spec == "sqlite" or spec.startswith("sqlite:"):
        from repro.engines.datalog.storage_sqlite import SQLiteFactStore

        path = spec[len("sqlite:"):] if spec.startswith("sqlite:") else ""
        return SQLiteFactStore(path or ":memory:")
    raise ValueError(
        f"unknown fact-store backend {spec!r} "
        "(expected 'memory', 'sqlite' or 'sqlite:PATH')"
    )


class DeltaView:
    """An immutable view over the rows derived in the previous iteration.

    Semi-naive evaluation restricts one occurrence of a recursive relation to
    these rows.  The view carries its own mini hash indexes (built lazily per
    position set) so a delta atom that ends up with bound columns can still
    be probed instead of scanned.

    A delta is a *set* of facts: duplicate input rows collapse (first
    occurrence kept, insertion order otherwise preserved).
    """

    __slots__ = ("rows", "_indexes")

    def __init__(self, rows: Iterable[Row]) -> None:
        self.rows: Tuple[Row, ...] = tuple(dict.fromkeys(rows))
        self._indexes: Dict[Positions, Dict[Key, List[Row]]] = {}

    def __len__(self) -> int:
        return len(self.rows)

    def scan(self) -> Sequence[Row]:
        """Return every row of the delta."""
        return self.rows

    def lookup(self, positions: Sequence[int], key: Key) -> Sequence[Row]:
        """Return the delta rows whose ``positions`` equal ``key``."""
        positions_key = tuple(positions)
        if not positions_key:
            return self.rows
        index = self._indexes.get(positions_key)
        if index is None:
            index = defaultdict(list)
            for row in self.rows:
                index[tuple(row[i] for i in positions_key)].append(row)
            self._indexes[positions_key] = index
        return index.get(tuple(key), ())


class RelationChangeLog:
    """A bounded per-relation log of effective row changes, versioned by the
    store's ``data_version`` counter.

    Backends append ``(version, row, ±1)`` entries on their write paths
    (after bumping the version, so each entry carries the version it
    produced) and answer :meth:`changes_since` by netting the suffix newer
    than the requested version.  The log is a cache, not a ledger: it keeps
    at most :attr:`LIMIT` entries per relation and records how far back it
    is complete (``floor``), answering ``None`` beyond that — the columnar
    executor then falls back to a full re-encode, so truncation can never
    produce a wrong delta.  Batched writes share one version (the stores
    bump once per effective batch), so trimming always drops whole version
    groups: a retained version's delta is never half-reported.
    """

    LIMIT = 1024

    def __init__(self) -> None:
        # relation -> [(version, row, +1 | -1)], oldest first
        self._entries: Dict[str, List[Tuple[int, Row, int]]] = defaultdict(list)
        # relation -> oldest version changes_since() can still answer for
        self._floor: Dict[str, int] = defaultdict(int)

    def record(self, name: str, version: int, row: Row, sign: int) -> None:
        """Append one effective change made at ``version``."""
        log = self._entries[name]
        log.append((version, row, sign))
        if len(log) > self.LIMIT:
            self._trim(name)

    def record_many(
        self, name: str, version: int, rows: Sequence[Row], sign: int
    ) -> None:
        """Append a batch of effective changes sharing one ``version``."""
        if len(rows) > self.LIMIT:
            # A batch too large to retain would be trimmed away immediately;
            # skip the appends and invalidate the history in one step.
            self.reset(name, version)
            return
        log = self._entries[name]
        log.extend((version, row, sign) for row in rows)
        if len(log) > self.LIMIT:
            self._trim(name)

    def reset(self, name: str, version: int) -> None:
        """Forget the history of ``name`` (wholesale replace/clear)."""
        self._entries[name] = []
        self._floor[name] = version

    def _trim(self, name: str) -> None:
        log = self._entries[name]
        drop = len(log) - self.LIMIT
        cut_version = log[drop - 1][0]
        # Drop whole version groups: every entry at the cut version goes
        # too, so any version the log still answers for is fully covered.
        while drop < len(log) and log[drop][0] == cut_version:
            drop += 1
        del log[:drop]
        self._floor[name] = cut_version

    def changes_since(
        self, name: str, version: int
    ) -> Optional[Tuple[List[Row], List[Row]]]:
        """Net the entries newer than ``version``; ``None`` past the floor."""
        if version < self._floor[name]:
            return None
        net: Dict[Row, int] = {}
        for entry_version, row, sign in self._entries[name]:
            if entry_version > version:
                net[row] = net.get(row, 0) + sign
        added = [row for row, sign in net.items() if sign > 0]
        removed = [row for row, sign in net.items() if sign < 0]
        return added, removed


class FactStore(StoreBackend):
    """The in-memory backend: tuple sets with incrementally maintained hash
    indexes."""

    # Reads are plain dict/set lookups (atomic under CPython's GIL) and the
    # one read-triggered write — lazy index construction — is serialised by
    # ``_index_lock`` below, so concurrent readers need no external mutex.
    concurrent_reads = True

    def __init__(self, maintain_indexes: bool = True) -> None:
        self._relations: Dict[str, Set[Row]] = defaultdict(set)
        # relation name -> {positions -> {key -> [rows]}}
        self._indexes: Dict[str, Dict[Positions, Dict[Key, List[Row]]]] = {}
        self._maintain = maintain_indexes
        #: number of from-scratch index constructions (monotone counter)
        self.index_build_count = 0
        #: incrementally maintained cardinality / distinct-count statistics
        self._stats = StatsRegistry()
        # per-relation monotone change counters (see data_version)
        self._versions: Dict[str, int] = defaultdict(int)
        # bounded per-relation history backing changes_since()
        self._changelog = RelationChangeLog()
        # serialises lazy index builds: two concurrent readers probing the
        # same un-indexed (relation, positions) must produce one index and
        # one ``index_build_count`` bump, not an interleaved half-built dict
        self._index_lock = threading.Lock()

    # -- base operations ---------------------------------------------------

    def relation(self, name: str) -> Set[Row]:
        """Return the tuple set of ``name`` (created empty on first access)."""
        return self._relations[name]

    def relation_names(self) -> List[str]:
        """Return the names of all stored relations."""
        return list(self._relations)

    def count(self, name: str) -> int:
        """Return the number of tuples in ``name``."""
        return len(self._relations[name])

    def contains(self, name: str, row: Row) -> bool:
        """Return whether ``row`` is present in relation ``name``."""
        return row in self._relations[name]

    def add(self, name: str, row: Row) -> bool:
        """Insert ``row``; return ``True`` when it was new.

        Existing indexes on the relation are updated in place.
        """
        relation = self._relations[name]
        if row in relation:
            return False
        relation.add(row)
        self._versions[name] += 1
        self._changelog.record(name, self._versions[name], row, 1)
        self._stats.record_add(name, row)
        indexes = self._indexes.get(name)
        if indexes:
            if self._maintain:
                for positions, index in indexes.items():
                    index[tuple(row[i] for i in positions)].append(row)
            else:
                indexes.clear()
        return True

    def add_many(self, name: str, rows: Iterable[Row]) -> int:
        """Insert many rows; return how many were new."""
        relation = self._relations[name]
        indexes = self._indexes.get(name)
        stats = self._stats
        fresh: List[Row] = []
        for row in rows:
            row = tuple(row)
            if row not in relation:
                relation.add(row)
                stats.record_add(name, row)
                fresh.append(row)
        if fresh:
            self._versions[name] += 1
            self._changelog.record_many(name, self._versions[name], fresh, 1)
        if not fresh or not indexes:
            return len(fresh)
        if self._maintain:
            for positions, index in indexes.items():
                for row in fresh:
                    index[tuple(row[i] for i in positions)].append(row)
        else:
            indexes.clear()
        return len(fresh)

    def remove(self, name: str, row: Row) -> bool:
        """Remove ``row`` if present; return ``True`` when it was removed."""
        relation = self._relations[name]
        if row not in relation:
            return False
        relation.discard(row)
        self._versions[name] += 1
        self._changelog.record(name, self._versions[name], row, -1)
        self._stats.record_remove(name, row)
        indexes = self._indexes.get(name)
        if not indexes:
            return True
        if not self._maintain:
            indexes.clear()
            return True
        for positions, index in indexes.items():
            key = tuple(row[i] for i in positions)
            bucket = index.get(key)
            if bucket is None:
                continue
            bucket.remove(row)
            if not bucket:
                del index[key]
        return True

    def replace(self, name: str, rows: Iterable[Row]) -> None:
        """Replace the whole relation with ``rows``.

        Wholesale replacement drops the relation's indexes; they are rebuilt
        lazily on the next lookup.
        """
        replacement = set(tuple(row) for row in rows)
        self._relations[name] = replacement
        self._versions[name] += 1
        self._changelog.reset(name, self._versions[name])
        self._stats.record_clear(name)
        for row in replacement:
            self._stats.record_add(name, row)
        self._indexes.pop(name, None)

    def clear_relation(self, name: str) -> None:
        """Remove every tuple of ``name``, emptying (not dropping) its indexes.

        The relation's existing hash indexes stay registered with empty
        buckets — an empty index over an empty relation is exact — so a
        session's warm re-derivation never pays an index rebuild
        (``index_build_count`` is untouched; the benchmarks assert this).
        """
        self._relations[name] = set()
        self._versions[name] += 1
        self._changelog.reset(name, self._versions[name])
        self._stats.record_clear(name)
        indexes = self._indexes.get(name)
        if indexes:
            for index in indexes.values():
                index.clear()

    def data_version(self, name: str) -> Optional[int]:
        """Per-relation change counter, bumped only on effective mutations."""
        return self._versions[name]

    def changes_since(
        self, name: str, version: int
    ) -> Optional[Tuple[List[Row], List[Row]]]:
        """Net row delta of ``name`` since ``version`` (see the base class)."""
        return self._changelog.changes_since(name, int(version))

    # -- indexed access ------------------------------------------------------

    def lookup(self, name: str, positions: Sequence[int], key: Key) -> Sequence[Row]:
        """Return the tuples of ``name`` whose ``positions`` equal ``key``.

        Builds a hash index for the position set on first use; subsequent
        inserts keep it current, so the build happens at most once per
        ``(relation, positions)`` pair.

        The returned sequence may alias the live index bucket: mutating the
        relation invalidates in-flight iteration over it.  Callers that
        insert while consuming results (anything driving ``rule_solutions``
        lazily) must materialise the derived facts before inserting, as the
        engine does.
        """
        positions_key = tuple(positions)
        if not positions_key:
            return list(self._relations[name])
        index = self._index_for(name, positions_key)
        return index.get(tuple(key), [])

    def lookup_many(
        self, name: str, positions: Sequence[int], keys: Sequence[Key]
    ) -> Dict[Key, Sequence[Row]]:
        """Answer a whole batch of probe keys with one index sweep.

        The position index is acquired (built at most once) and then every
        distinct key is resolved with a plain dict probe — no per-key method
        dispatch.  Returned sequences may alias live index buckets, with the
        same caveat as :meth:`lookup`.
        """
        if not keys:
            return {}
        positions_key = tuple(positions)
        result: Dict[Key, Sequence[Row]] = {}
        if not positions_key:
            rows = list(self._relations[name])
            for key in keys:
                result[tuple(key)] = rows
            return result
        index = self._index_for(name, positions_key)
        for key in keys:
            key = tuple(key)
            if key not in result:
                result[key] = index.get(key, ())
        return result

    def _index_for(
        self, name: str, positions_key: Positions
    ) -> Dict[Key, List[Row]]:
        """Return the index for ``positions_key``, building it on first use."""
        indexes = self._indexes.setdefault(name, {})
        index = indexes.get(positions_key)
        if index is None:
            with self._index_lock:
                index = indexes.get(positions_key)
                if index is None:
                    index = defaultdict(list)
                    for row in self._relations[name]:
                        index[tuple(row[i] for i in positions_key)].append(row)
                    indexes[positions_key] = index
                    self.index_build_count += 1
        return index

    def scan(self, name: str) -> List[Row]:
        """Return every tuple of ``name`` as a list."""
        return list(self._relations[name])

    @property
    def index_count(self) -> int:
        """Return how many distinct ``(relation, positions)`` indexes exist."""
        return sum(len(by_positions) for by_positions in self._indexes.values())

    def relation_stats(self, name: str) -> RelationStats:
        """Return the incrementally maintained statistics for ``name``.

        O(arity): the write path keeps one value→multiplicity map per
        column current, so snapshotting costs nothing per row — the property
        that makes per-iteration snapshots in the fixpoint loop free.
        """
        return self._stats.stats(name)

    def snapshot(self) -> Dict[str, Set[Row]]:
        """Return a shallow copy of all relations (for debugging/tests)."""
        return {name: set(rows) for name, rows in self._relations.items()}
