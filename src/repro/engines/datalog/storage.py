"""Fact storage for the Datalog engine.

Relations are sets of tuples.  Joins go through hash indexes: an index for
relation ``R`` on positions ``(0, 2)`` maps each ``(value0, value2)`` key to
the list of tuples carrying those values.  Indexes are built lazily on first
lookup and are then maintained **incrementally**: insertions and removals
update every existing index in place, so a semi-naive fixpoint loop that
grows a relation on each iteration never pays for an index rebuild.  The
number of from-scratch index constructions is exposed as
``index_build_count``; with incremental maintenance it equals the number of
distinct ``(relation, positions)`` indexes ever requested (each is built
exactly once), which the benchmarks assert.

``maintain_indexes=False`` restores the seed behaviour — indexes are dropped
whenever the relation changes and rebuilt on the next lookup — and exists so
benchmarks can measure the cost of that strategy.

:class:`DeltaView` wraps the per-iteration delta of a relation for semi-naive
evaluation.  It offers the same ``lookup``/``scan`` interface as a stored
relation (with its own lazily built mini-indexes), so the evaluator can treat
"read the delta" and "read the full relation" uniformly.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Sequence, Set, Tuple

Row = Tuple
Key = Tuple
Positions = Tuple[int, ...]


class DeltaView:
    """An immutable view over the rows derived in the previous iteration.

    Semi-naive evaluation restricts one occurrence of a recursive relation to
    these rows.  The view carries its own mini hash indexes (built lazily per
    position set) so a delta atom that ends up with bound columns can still
    be probed instead of scanned.
    """

    __slots__ = ("rows", "_indexes")

    def __init__(self, rows: Iterable[Row]) -> None:
        self.rows: Tuple[Row, ...] = tuple(rows)
        self._indexes: Dict[Positions, Dict[Key, List[Row]]] = {}

    def __len__(self) -> int:
        return len(self.rows)

    def scan(self) -> Sequence[Row]:
        """Return every row of the delta."""
        return self.rows

    def lookup(self, positions: Sequence[int], key: Key) -> Sequence[Row]:
        """Return the delta rows whose ``positions`` equal ``key``."""
        positions_key = tuple(positions)
        if not positions_key:
            return self.rows
        index = self._indexes.get(positions_key)
        if index is None:
            index = defaultdict(list)
            for row in self.rows:
                index[tuple(row[i] for i in positions_key)].append(row)
            self._indexes[positions_key] = index
        return index.get(tuple(key), ())


class FactStore:
    """Tuple storage with incrementally maintained hash indexes."""

    def __init__(self, maintain_indexes: bool = True) -> None:
        self._relations: Dict[str, Set[Row]] = defaultdict(set)
        # relation name -> {positions -> {key -> [rows]}}
        self._indexes: Dict[str, Dict[Positions, Dict[Key, List[Row]]]] = {}
        self._maintain = maintain_indexes
        #: number of from-scratch index constructions (monotone counter)
        self.index_build_count = 0

    # -- base operations ---------------------------------------------------

    def relation(self, name: str) -> Set[Row]:
        """Return the tuple set of ``name`` (created empty on first access)."""
        return self._relations[name]

    def relation_names(self) -> List[str]:
        """Return the names of all stored relations."""
        return list(self._relations)

    def count(self, name: str) -> int:
        """Return the number of tuples in ``name``."""
        return len(self._relations[name])

    def contains(self, name: str, row: Row) -> bool:
        """Return whether ``row`` is present in relation ``name``."""
        return row in self._relations[name]

    def add(self, name: str, row: Row) -> bool:
        """Insert ``row``; return ``True`` when it was new.

        Existing indexes on the relation are updated in place.
        """
        relation = self._relations[name]
        if row in relation:
            return False
        relation.add(row)
        indexes = self._indexes.get(name)
        if indexes:
            if self._maintain:
                for positions, index in indexes.items():
                    index[tuple(row[i] for i in positions)].append(row)
            else:
                indexes.clear()
        return True

    def add_many(self, name: str, rows: Iterable[Row]) -> int:
        """Insert many rows; return how many were new."""
        relation = self._relations[name]
        indexes = self._indexes.get(name)
        if indexes and self._maintain:
            fresh: List[Row] = []
            for row in rows:
                row = tuple(row)
                if row not in relation:
                    relation.add(row)
                    fresh.append(row)
            for positions, index in indexes.items():
                for row in fresh:
                    index[tuple(row[i] for i in positions)].append(row)
            return len(fresh)
        before = len(relation)
        relation.update(tuple(row) for row in rows)
        added = len(relation) - before
        if added and indexes:
            indexes.clear()
        return added

    def remove(self, name: str, row: Row) -> None:
        """Remove ``row`` if present (used by subsumption)."""
        relation = self._relations[name]
        if row not in relation:
            return
        relation.discard(row)
        indexes = self._indexes.get(name)
        if not indexes:
            return
        if not self._maintain:
            indexes.clear()
            return
        for positions, index in indexes.items():
            key = tuple(row[i] for i in positions)
            bucket = index.get(key)
            if bucket is None:
                continue
            bucket.remove(row)
            if not bucket:
                del index[key]

    def replace(self, name: str, rows: Iterable[Row]) -> None:
        """Replace the whole relation with ``rows``.

        Wholesale replacement drops the relation's indexes; they are rebuilt
        lazily on the next lookup.
        """
        self._relations[name] = set(tuple(row) for row in rows)
        self._indexes.pop(name, None)

    # -- indexed access ------------------------------------------------------

    def lookup(self, name: str, positions: Sequence[int], key: Key) -> Sequence[Row]:
        """Return the tuples of ``name`` whose ``positions`` equal ``key``.

        Builds a hash index for the position set on first use; subsequent
        inserts keep it current, so the build happens at most once per
        ``(relation, positions)`` pair.

        The returned sequence may alias the live index bucket: mutating the
        relation invalidates in-flight iteration over it.  Callers that
        insert while consuming results (anything driving ``rule_solutions``
        lazily) must materialise the derived facts before inserting, as the
        engine does.
        """
        positions_key = tuple(positions)
        if not positions_key:
            return list(self._relations[name])
        indexes = self._indexes.setdefault(name, {})
        index = indexes.get(positions_key)
        if index is None:
            index = defaultdict(list)
            for row in self._relations[name]:
                index[tuple(row[i] for i in positions_key)].append(row)
            indexes[positions_key] = index
            self.index_build_count += 1
        return index.get(tuple(key), [])

    def scan(self, name: str) -> List[Row]:
        """Return every tuple of ``name`` as a list."""
        return list(self._relations[name])

    @property
    def index_count(self) -> int:
        """Return how many distinct ``(relation, positions)`` indexes exist."""
        return sum(len(by_positions) for by_positions in self._indexes.values())

    def snapshot(self) -> Dict[str, Set[Row]]:
        """Return a shallow copy of all relations (for debugging/tests)."""
        return {name: set(rows) for name, rows in self._relations.items()}
