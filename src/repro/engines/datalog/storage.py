"""Fact storage for the Datalog engine.

Relations are sets of tuples.  To make joins cheap the store builds hash
indexes on demand: an index for relation ``R`` on positions ``(0, 2)`` maps
each ``(value0, value2)`` key to the list of tuples carrying those values.
Indexes are invalidated whenever the relation grows.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

Row = Tuple
Key = Tuple


class FactStore:
    """Tuple storage with lazily built hash indexes."""

    def __init__(self) -> None:
        self._relations: Dict[str, Set[Row]] = defaultdict(set)
        self._indexes: Dict[Tuple[str, Tuple[int, ...]], Dict[Key, List[Row]]] = {}

    # -- base operations ---------------------------------------------------

    def relation(self, name: str) -> Set[Row]:
        """Return the tuple set of ``name`` (created empty on first access)."""
        return self._relations[name]

    def relation_names(self) -> List[str]:
        """Return the names of all stored relations."""
        return list(self._relations)

    def count(self, name: str) -> int:
        """Return the number of tuples in ``name``."""
        return len(self._relations[name])

    def contains(self, name: str, row: Row) -> bool:
        """Return whether ``row`` is present in relation ``name``."""
        return row in self._relations[name]

    def add(self, name: str, row: Row) -> bool:
        """Insert ``row``; return ``True`` when it was new."""
        relation = self._relations[name]
        if row in relation:
            return False
        relation.add(row)
        self._invalidate(name)
        return True

    def add_many(self, name: str, rows: Iterable[Row]) -> int:
        """Insert many rows; return how many were new."""
        relation = self._relations[name]
        before = len(relation)
        relation.update(tuple(row) for row in rows)
        added = len(relation) - before
        if added:
            self._invalidate(name)
        return added

    def remove(self, name: str, row: Row) -> None:
        """Remove ``row`` if present (used by subsumption)."""
        relation = self._relations[name]
        if row in relation:
            relation.discard(row)
            self._invalidate(name)

    def replace(self, name: str, rows: Iterable[Row]) -> None:
        """Replace the whole relation with ``rows``."""
        self._relations[name] = set(tuple(row) for row in rows)
        self._invalidate(name)

    def _invalidate(self, name: str) -> None:
        stale = [key for key in self._indexes if key[0] == name]
        for key in stale:
            del self._indexes[key]

    # -- indexed access ------------------------------------------------------

    def lookup(
        self, name: str, positions: Sequence[int], key: Key
    ) -> List[Row]:
        """Return the tuples of ``name`` whose ``positions`` equal ``key``.

        Builds (and caches) a hash index for the position set on first use.
        """
        positions_key = tuple(positions)
        if not positions_key:
            return list(self._relations[name])
        index_key = (name, positions_key)
        index = self._indexes.get(index_key)
        if index is None:
            index = defaultdict(list)
            for row in self._relations[name]:
                index[tuple(row[i] for i in positions_key)].append(row)
            self._indexes[index_key] = index
        return index.get(tuple(key), [])

    def scan(self, name: str) -> List[Row]:
        """Return every tuple of ``name`` as a list."""
        return list(self._relations[name])

    def snapshot(self) -> Dict[str, Set[Row]]:
        """Return a shallow copy of all relations (for debugging/tests)."""
        return {name: set(rows) for name, rows in self._relations.items()}
