"""The **interpreted** plan executor for the Datalog engine.

Rules are executed from a compiled :class:`~repro.engines.datalog.planner.RulePlan`:
the planner has already picked the join order, precomputed each atom's index
positions, and partitioned comparisons/negations onto the earliest join step
where they can run (``=`` against a single unbound variable becomes an
assignment).  The executor here just walks the plan: probe the (incrementally
maintained) hash index for each step, extend the bindings, and apply the
step's guard.  Aggregations are computed over the full set of body solutions
at the end, grouped by the non-aggregated head variables
(:func:`aggregate_solutions` — shared with the compiled executor).

This module is the engine's *reference* execution semantics and its
fallback path; the default executor
(:mod:`~repro.engines.datalog.executor_compiled`) instead source-generates
one specialised closure per plan and batches index probes, and is held
equivalent to this interpreter by the differential suite.

When no plan is supplied, one is built on the fly — callers that evaluate a
rule repeatedly (the engine's fixpoint loop) pass cached plans instead.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.common.errors import ExecutionError
from repro.dlir.core import ArithExpr, Const, Param, Rule, Term, Var
from repro.engines.datalog.planner import Guard, RulePlan, plan_rule
from repro.engines.datalog.storage import DeltaView, StoreBackend

Bindings = Dict[str, object]
Params = Optional[Dict[str, object]]


def param_bindings(params: Params) -> Bindings:
    """Return the reserved ``$name`` bindings for one parameter assignment.

    Late-bound parameters travel through evaluation as pre-seeded bindings
    under ``$``-prefixed keys — rule variables are identifiers, so the
    namespaces cannot collide and every downstream consumer (probe-key
    assembly, guards, head projection) resolves them with the ordinary
    bindings lookup.
    """
    if not params:
        return {}
    return {f"${name}": value for name, value in params.items()}


def evaluate_term(term: Term, bindings: Bindings):
    """Evaluate ``term`` to a value under ``bindings``."""
    if isinstance(term, Const):
        return term.value
    if isinstance(term, Var):
        if term.name not in bindings:
            raise ExecutionError(f"variable {term.name!r} is not bound")
        return bindings[term.name]
    if isinstance(term, Param):
        key = f"${term.name}"
        if key not in bindings:
            raise ExecutionError(
                f"no value bound for query parameter ${term.name}"
            )
        return bindings[key]
    if isinstance(term, ArithExpr):
        left = evaluate_term(term.left, bindings)
        right = evaluate_term(term.right, bindings)
        return _apply_arith(term.op, left, right)
    raise ExecutionError(f"cannot evaluate term {term!r}")


def _apply_arith(op: str, left, right):
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ExecutionError("division by zero")
        if isinstance(left, int) and isinstance(right, int):
            return left // right
        return left / right
    if op == "%":
        return left % right
    raise ExecutionError(f"unknown arithmetic operator {op!r}")


#: the error format both executors raise for mixed-type ordering comparisons
COMPARISON_TYPE_ERROR_FMT = "cannot compare %r and %r with %r"


def _compare(op: str, left, right) -> bool:
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    try:
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError as exc:
        raise ExecutionError(
            COMPARISON_TYPE_ERROR_FMT % (left, right, op)
        ) from exc
    raise ExecutionError(f"unknown comparison operator {op!r}")


def comparison_holds(op: str, left, right) -> bool:
    """Evaluate one comparison operator on already-evaluated operands.

    Public entry point shared with the incremental maintainer, which
    re-checks rule comparisons outside a plan's guard machinery.  Raises
    :class:`ExecutionError` on mixed-type ordering comparisons, exactly
    like both executors.
    """
    return _compare(op, left, right)


def _apply_guard(guard: Guard, bindings: Bindings, store: StoreBackend) -> bool:
    """Run a guard in place; return ``False`` when a check fails."""
    for op in guard.ops:
        if op[0] == "assign":
            bindings[op[1]] = evaluate_term(op[2], bindings)
        else:
            comparison = op[1]
            if not _compare(
                comparison.op,
                evaluate_term(comparison.left, bindings),
                evaluate_term(comparison.right, bindings),
            ):
                return False
    for negation in guard.negations:
        key = tuple(evaluate_term(term, bindings) for term in negation.terms)
        if store.lookup(negation.relation, negation.positions, key):
            return False
    return True


def resolve_delta_view(
    plan: RulePlan,
    delta_index: Optional[int],
    delta_rows: Optional[Sequence[Tuple]],
) -> Optional[DeltaView]:
    """Validate and wrap the delta rows for one rule application.

    Shared by both executors so their entry-point semantics cannot drift: a
    delta-variant plan is also a valid full plan (no delta rows), but
    applying delta rows at a position the plan was not compiled for would
    restrict the wrong atom, so that mismatch is rejected here.
    """
    if delta_rows is None:
        return None
    if plan.delta_index != delta_index:
        raise ExecutionError(
            f"plan compiled for delta position {plan.delta_index!r} cannot "
            f"apply delta rows at position {delta_index!r}"
        )
    return (
        delta_rows
        if isinstance(delta_rows, DeltaView)
        else DeltaView(tuple(row) for row in delta_rows)
    )


def rule_solutions(
    rule: Rule,
    store: StoreBackend,
    delta_index: Optional[int] = None,
    delta_rows: Optional[Sequence[Tuple]] = None,
    plan: Optional[RulePlan] = None,
    params: Params = None,
) -> Iterator[Bindings]:
    """Yield every variable binding satisfying the rule body.

    When ``delta_index`` is given, the positive atom at that body position
    draws its rows from ``delta_rows`` instead of the store (semi-naive
    evaluation).  ``plan`` supplies a precompiled strategy; omitted, one is
    built for this call.  ``params`` supplies the run's late-bound
    parameter values (seeded into the bindings under ``$name`` keys).
    """
    if plan is None:
        delta_size = len(delta_rows) if delta_rows is not None else 0
        plan = plan_rule(rule, store, delta_index, delta_size)
    delta_view = resolve_delta_view(plan, delta_index, delta_rows)
    delta_body_index = plan.delta_index

    bindings: Bindings = param_bindings(params)
    if not _apply_guard(plan.prelude, bindings, store):
        return
    steps = plan.steps
    step_count = len(steps)
    unresolved = plan.unresolved

    def recurse(position: int, bindings: Bindings) -> Iterator[Bindings]:
        if position == step_count:
            if unresolved:
                # Comparisons left with unbound variables: the rule is unsafe.
                unresolved_text = ", ".join(str(c) for c in unresolved)
                raise ExecutionError(
                    f"rule {rule} has comparisons over unbound variables: "
                    f"{unresolved_text}"
                )
            yield bindings
            return
        step = steps[position]
        try:
            key = tuple(
                bindings[source] if is_var else source
                for is_var, source in step.key_sources
            )
        except KeyError as exc:
            # Probe keys read variables bound by earlier steps and the
            # run's ``$name`` parameter seeds; surface a miss as the same
            # ExecutionError the compiled executor raises.
            missing = exc.args[0]
            if isinstance(missing, str) and missing.startswith("$"):
                raise ExecutionError(
                    f"no value bound for query parameter {missing}"
                ) from exc
            raise ExecutionError(f"variable {missing!r} is not bound") from exc
        if step.body_index == delta_body_index and delta_view is not None:
            rows = delta_view.lookup(step.key_positions, key)
        else:
            rows = store.lookup(step.relation, step.key_positions, key)
        bind_positions = step.bind_positions
        eq_positions = step.eq_positions
        guard = step.guard
        next_position = position + 1
        for row in rows:
            if eq_positions and any(row[a] != row[b] for a, b in eq_positions):
                continue
            extended = dict(bindings)
            for pos, name in bind_positions:
                extended[name] = row[pos]
            if not guard.is_empty() and not _apply_guard(guard, extended, store):
                continue
            yield from recurse(next_position, extended)

    yield from recurse(0, bindings)


def _aggregate_value(func: str, values: List) -> object:
    if func == "count":
        return len(values)
    if func == "sum":
        return sum(values) if values else 0
    if func == "min":
        return min(values)
    if func == "max":
        return max(values)
    if func == "avg":
        return sum(values) / len(values) if values else 0.0
    if func == "collect":
        return ",".join(str(value) for value in sorted(values, key=str))
    raise ExecutionError(f"unknown aggregate function {func!r}")


def evaluate_rule(
    rule: Rule,
    store: StoreBackend,
    delta_index: Optional[int] = None,
    delta_rows: Optional[Sequence[Tuple]] = None,
    plan: Optional[RulePlan] = None,
    params: Params = None,
) -> Set[Tuple]:
    """Evaluate ``rule`` and return the derived head tuples."""
    if rule.aggregations:
        # Aggregate rules are always recomputed over the full store: a new
        # delta row can change the aggregate of groups derived earlier.
        return _evaluate_aggregate_rule(rule, store, plan, params)
    derived: Set[Tuple] = set()
    head_terms = rule.head.terms
    for bindings in rule_solutions(
        rule, store, delta_index, delta_rows, plan, params=params
    ):
        derived.add(tuple(evaluate_term(term, bindings) for term in head_terms))
    return derived


def _evaluate_aggregate_rule(
    rule: Rule,
    store: StoreBackend,
    plan: Optional[RulePlan] = None,
    params: Params = None,
) -> Set[Tuple]:
    return aggregate_solutions(
        rule, rule_solutions(rule, store, plan=plan, params=params), params=params
    )


def aggregate_solutions(
    rule: Rule, solutions: Iterable[Bindings], params: Params = None
) -> Set[Tuple]:
    """Group ``solutions`` and derive the aggregate rule's head tuples.

    Shared by the interpreted and compiled executors: the executor produces
    the body solutions (with whatever strategy), this computes the grouping,
    distinct handling and aggregate functions on top.  ``params`` re-seeds
    the ``$name`` bindings for solution dicts that do not carry them (the
    compiled executor's aggregate path materialises only rule variables).
    """
    seeded = param_bindings(params)
    group_keys = rule.group_by_variables()
    aggregate_by_result = {agg.result.name: agg for agg in rule.aggregations}
    groups: Dict[Tuple, Dict[str, List]] = defaultdict(
        lambda: {name: [] for name in aggregate_by_result}
    )
    group_seen_distinct: Dict[Tuple, Dict[str, Set]] = defaultdict(
        lambda: {name: set() for name in aggregate_by_result}
    )
    group_bindings: Dict[Tuple, Bindings] = {}
    for bindings in solutions:
        # Interpreter solutions (and compiled closures' bindings dicts)
        # already carry the $ keys; only re-seed dicts that lack them.
        if seeded and any(key not in bindings for key in seeded):
            bindings = {**seeded, **bindings}
        key = tuple(bindings[name] for name in group_keys)
        group_bindings.setdefault(key, bindings)
        for name, aggregation in aggregate_by_result.items():
            if aggregation.argument is None:
                value = tuple(sorted(bindings.items(), key=lambda item: item[0]))
            else:
                value = evaluate_term(aggregation.argument, bindings)
            if aggregation.distinct or aggregation.argument is None:
                seen = group_seen_distinct[key][name]
                if value in seen:
                    continue
                seen.add(value)
            groups[key][name].append(value)
    derived: Set[Tuple] = set()
    for key, aggregates in groups.items():
        bindings = dict(group_bindings[key])
        for name, aggregation in aggregate_by_result.items():
            values = aggregates[name]
            if aggregation.argument is None and aggregation.func == "count":
                bindings[name] = len(values)
            else:
                bindings[name] = _aggregate_value(aggregation.func, values)
        derived.add(tuple(evaluate_term(term, bindings) for term in rule.head.terms))
    return derived
