"""Single-rule evaluation for the Datalog engine.

The evaluator performs an index-nested-loop join over the rule's positive
atoms in body order, binding variables as it goes.  Comparisons are applied
as soon as their variables are bound (``=`` against a single unbound variable
acts as an assignment); negated atoms are checked once all their outer
variables are bound; aggregations are computed over the full set of body
solutions at the end.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.common.errors import ExecutionError
from repro.dlir.core import (
    Aggregation,
    ArithExpr,
    Atom,
    Comparison,
    Const,
    NegatedAtom,
    Rule,
    Term,
    Var,
    Wildcard,
    term_variables,
)
from repro.engines.datalog.storage import FactStore

Bindings = Dict[str, object]


def evaluate_term(term: Term, bindings: Bindings):
    """Evaluate ``term`` to a value under ``bindings``."""
    if isinstance(term, Const):
        return term.value
    if isinstance(term, Var):
        if term.name not in bindings:
            raise ExecutionError(f"variable {term.name!r} is not bound")
        return bindings[term.name]
    if isinstance(term, ArithExpr):
        left = evaluate_term(term.left, bindings)
        right = evaluate_term(term.right, bindings)
        return _apply_arith(term.op, left, right)
    raise ExecutionError(f"cannot evaluate term {term!r}")


def _apply_arith(op: str, left, right):
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ExecutionError("division by zero")
        if isinstance(left, int) and isinstance(right, int):
            return left // right
        return left / right
    if op == "%":
        return left % right
    raise ExecutionError(f"unknown arithmetic operator {op!r}")


def _compare(op: str, left, right) -> bool:
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    try:
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError as exc:
        raise ExecutionError(
            f"cannot compare {left!r} and {right!r} with {op!r}"
        ) from exc
    raise ExecutionError(f"unknown comparison operator {op!r}")


def _term_is_bound(term: Term, bindings: Bindings) -> bool:
    return all(name in bindings for name in term_variables(term))


class _PendingChecks:
    """Comparisons and negations not yet applied, checked opportunistically."""

    def __init__(self, rule: Rule, store: FactStore) -> None:
        self._store = store
        self.comparisons: List[Comparison] = list(rule.comparisons())
        self.negations: List[NegatedAtom] = list(rule.negated_atoms())

    def apply_ready(
        self, bindings: Bindings, pending_comparisons: List[Comparison]
    ) -> Optional[List[Comparison]]:
        """Apply every comparison whose variables are bound.

        Returns the remaining comparisons, or ``None`` when a check failed.
        ``=`` with exactly one unbound variable binds that variable in place.
        """
        remaining: List[Comparison] = []
        progress = True
        current = pending_comparisons
        while progress:
            progress = False
            remaining = []
            for comparison in current:
                left_bound = _term_is_bound(comparison.left, bindings)
                right_bound = _term_is_bound(comparison.right, bindings)
                if left_bound and right_bound:
                    if not _compare(
                        comparison.op,
                        evaluate_term(comparison.left, bindings),
                        evaluate_term(comparison.right, bindings),
                    ):
                        return None
                    progress = True
                elif comparison.op == "=" and left_bound and isinstance(comparison.right, Var):
                    bindings[comparison.right.name] = evaluate_term(
                        comparison.left, bindings
                    )
                    progress = True
                elif comparison.op == "=" and right_bound and isinstance(comparison.left, Var):
                    bindings[comparison.left.name] = evaluate_term(
                        comparison.right, bindings
                    )
                    progress = True
                else:
                    remaining.append(comparison)
            current = remaining
        return remaining

    def check_negations(self, bindings: Bindings) -> bool:
        """Return whether every negated atom has no matching fact."""
        for negated in self.negations:
            atom = negated.atom
            positions: List[int] = []
            key: List[object] = []
            for index, term in enumerate(atom.terms):
                if isinstance(term, Wildcard):
                    continue
                if isinstance(term, Var) and term.name not in bindings:
                    # Unbound variables inside a negated atom are existential:
                    # the check is "no fact matches the bound positions".
                    continue
                positions.append(index)
                key.append(evaluate_term(term, bindings))
            if self._store.lookup(atom.relation, positions, tuple(key)):
                return False
        return True


def _atom_rows(
    atom: Atom,
    bindings: Bindings,
    store: FactStore,
    override_rows: Optional[Sequence[Tuple]],
) -> Iterable[Tuple]:
    """Return candidate rows for ``atom`` given the current bindings."""
    positions: List[int] = []
    key: List[object] = []
    for index, term in enumerate(atom.terms):
        if isinstance(term, Const):
            positions.append(index)
            key.append(term.value)
        elif isinstance(term, Var) and term.name in bindings:
            positions.append(index)
            key.append(bindings[term.name])
    if override_rows is not None:
        rows = override_rows
        if not positions:
            return rows
        wanted = tuple(key)
        return [
            row for row in rows if tuple(row[i] for i in positions) == wanted
        ]
    return store.lookup(atom.relation, positions, tuple(key))


def _extend_bindings(atom: Atom, row: Tuple, bindings: Bindings) -> Optional[Bindings]:
    """Extend ``bindings`` with the variables of ``atom`` matched against ``row``."""
    new_bindings = dict(bindings)
    for index, term in enumerate(atom.terms):
        if isinstance(term, Wildcard) or isinstance(term, Const):
            continue
        if isinstance(term, Var):
            value = row[index]
            existing = new_bindings.get(term.name, _MISSING)
            if existing is _MISSING:
                new_bindings[term.name] = value
            elif existing != value:
                return None
        else:
            raise ExecutionError(f"unexpected term {term!r} in body atom")
    return new_bindings


_MISSING = object()


def _order_atoms(
    atoms_with_index: List[Tuple[int, Atom]],
    store: FactStore,
    delta_index: Optional[int],
    delta_size: int,
    constant_bound: Set[str],
) -> List[Tuple[int, Atom]]:
    """Greedily order body atoms to keep intermediate results small.

    The heuristic mirrors what a Datalog engine's automatic scheduler does:
    start from the delta atom (semi-naive) or the most selective atom
    (constants, small relation), then repeatedly pick the atom that shares
    the most variables with what is already bound, breaking ties by
    selectivity.  Without this, translation-generated rules that list node
    atoms before the edge atoms degenerate into cartesian products.
    """
    remaining = list(atoms_with_index)
    ordered: List[Tuple[int, Atom]] = []
    bound: Set[str] = set(constant_bound)

    def selectivity(entry: Tuple[int, Atom]) -> Tuple:
        index, atom = entry
        if index == delta_index:
            size = delta_size
        else:
            size = store.count(atom.relation)
        bound_positions = sum(
            1
            for term in atom.terms
            if isinstance(term, Const)
            or (isinstance(term, Var) and term.name in bound)
        )
        shared = sum(
            1
            for term in atom.terms
            if isinstance(term, Var) and term.name in bound
        )
        # More shared/bound positions first, then smaller relations.
        return (-shared, -bound_positions, size)

    while remaining:
        if not ordered and delta_index is not None:
            chosen = next(
                (entry for entry in remaining if entry[0] == delta_index), None
            )
            if chosen is None:
                chosen = min(remaining, key=selectivity)
        else:
            chosen = min(remaining, key=selectivity)
        remaining.remove(chosen)
        ordered.append(chosen)
        bound.update(chosen[1].variables())
    return ordered


def rule_solutions(
    rule: Rule,
    store: FactStore,
    delta_index: Optional[int] = None,
    delta_rows: Optional[Sequence[Tuple]] = None,
) -> Iterator[Bindings]:
    """Yield every variable binding satisfying the rule body.

    When ``delta_index`` is given, the positive atom at that body position
    draws its rows from ``delta_rows`` instead of the store (semi-naive
    evaluation).
    """
    atoms_with_index = [
        (index, literal)
        for index, literal in enumerate(rule.body)
        if isinstance(literal, Atom)
    ]
    # Variables equated to a constant are bound before any atom is joined;
    # the ordering heuristic can exploit that (e.g. ``n = 42`` makes the
    # Person atom on ``n`` highly selective).
    constant_bound: Set[str] = set()
    for comparison in rule.comparisons():
        if comparison.op != "=":
            continue
        if isinstance(comparison.left, Var) and isinstance(comparison.right, Const):
            constant_bound.add(comparison.left.name)
        if isinstance(comparison.right, Var) and isinstance(comparison.left, Const):
            constant_bound.add(comparison.right.name)
    atoms_with_index = _order_atoms(
        atoms_with_index,
        store,
        delta_index,
        len(delta_rows) if delta_rows is not None else 0,
        constant_bound,
    )
    checks = _PendingChecks(rule, store)

    def recurse(
        position: int, bindings: Bindings, pending: List[Comparison]
    ) -> Iterator[Bindings]:
        updated = dict(bindings)
        remaining = checks.apply_ready(updated, pending)
        if remaining is None:
            return
        if position == len(atoms_with_index):
            if remaining:
                # Comparisons left with unbound variables: the rule is unsafe.
                unresolved = ", ".join(str(comparison) for comparison in remaining)
                raise ExecutionError(
                    f"rule {rule} has comparisons over unbound variables: {unresolved}"
                )
            if not checks.check_negations(updated):
                return
            yield updated
            return
        body_index, atom = atoms_with_index[position]
        override = delta_rows if body_index == delta_index else None
        for row in _atom_rows(atom, updated, store, override):
            extended = _extend_bindings(atom, row, updated)
            if extended is None:
                continue
            yield from recurse(position + 1, extended, list(remaining))

    yield from recurse(0, {}, list(checks.comparisons))


def _aggregate_value(func: str, values: List) -> object:
    if func == "count":
        return len(values)
    if func == "sum":
        return sum(values) if values else 0
    if func == "min":
        return min(values)
    if func == "max":
        return max(values)
    if func == "avg":
        return sum(values) / len(values) if values else 0.0
    if func == "collect":
        return ",".join(str(value) for value in sorted(values, key=str))
    raise ExecutionError(f"unknown aggregate function {func!r}")


def evaluate_rule(
    rule: Rule,
    store: FactStore,
    delta_index: Optional[int] = None,
    delta_rows: Optional[Sequence[Tuple]] = None,
) -> Set[Tuple]:
    """Evaluate ``rule`` and return the derived head tuples."""
    if rule.aggregations:
        return _evaluate_aggregate_rule(rule, store)
    derived: Set[Tuple] = set()
    for bindings in rule_solutions(rule, store, delta_index, delta_rows):
        derived.add(tuple(evaluate_term(term, bindings) for term in rule.head.terms))
    return derived


def _evaluate_aggregate_rule(rule: Rule, store: FactStore) -> Set[Tuple]:
    group_keys = rule.group_by_variables()
    aggregate_by_result = {agg.result.name: agg for agg in rule.aggregations}
    groups: Dict[Tuple, Dict[str, List]] = defaultdict(
        lambda: {name: [] for name in aggregate_by_result}
    )
    group_seen_distinct: Dict[Tuple, Dict[str, Set]] = defaultdict(
        lambda: {name: set() for name in aggregate_by_result}
    )
    group_bindings: Dict[Tuple, Bindings] = {}
    for bindings in rule_solutions(rule, store):
        key = tuple(bindings[name] for name in group_keys)
        group_bindings.setdefault(key, bindings)
        for name, aggregation in aggregate_by_result.items():
            if aggregation.argument is None:
                value = tuple(sorted(bindings.items(), key=lambda item: item[0]))
            else:
                value = evaluate_term(aggregation.argument, bindings)
            if aggregation.distinct or aggregation.argument is None:
                seen = group_seen_distinct[key][name]
                if value in seen:
                    continue
                seen.add(value)
            groups[key][name].append(value)
    derived: Set[Tuple] = set()
    for key, aggregates in groups.items():
        bindings = dict(group_bindings[key])
        for name, aggregation in aggregate_by_result.items():
            values = aggregates[name]
            if aggregation.argument is None and aggregation.func == "count":
                bindings[name] = len(values)
            else:
                bindings[name] = _aggregate_value(aggregation.func, values)
        derived.add(tuple(evaluate_term(term, bindings) for term in rule.head.terms))
    return derived
