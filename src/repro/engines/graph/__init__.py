"""Property-graph engine: a graph store plus a PGIR interpreter.

This engine stands in for Neo4j in the paper's evaluation: it executes the
*original* query (lowered only to PGIR, not translated to Datalog or SQL)
directly against an in-memory property graph using pointer-style adjacency
traversal, BFS for variable-length patterns and BFS shortest paths.
"""

from repro.engines.graph.store import PropertyGraph
from repro.engines.graph.interpreter import GraphEngine, execute_pgir
from repro.engines.graph.loader import facts_to_property_graph

__all__ = ["PropertyGraph", "GraphEngine", "execute_pgir", "facts_to_property_graph"]
