"""Build a :class:`PropertyGraph` from DL-Schema facts.

All engines consume the same dataset: a mapping from DL-Schema relation names
to tuples (the EDB facts).  This loader converts those facts back into a
property graph using the :class:`~repro.schema.translate.SchemaMapping`
provenance, so that the graph engine and the relational/Datalog engines are
guaranteed to see the same data.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

from repro.common.errors import ExecutionError
from repro.engines.graph.store import PropertyGraph
from repro.schema.translate import SchemaMapping

FactsInput = Mapping[str, Iterable[Tuple]]


def facts_to_property_graph(facts: FactsInput, mapping: SchemaMapping) -> PropertyGraph:
    """Convert DL-Schema ``facts`` into a property graph."""
    graph = PropertyGraph()
    node_relations: Dict[str, str] = {
        relation: label for label, relation in mapping.node_relation_by_label.items()
    }
    # Nodes first so that edges can validate their endpoints.
    for relation_name, rows in facts.items():
        label = node_relations.get(relation_name)
        if label is None:
            continue
        declaration = mapping.dl_schema.get(relation_name)
        columns = declaration.column_names()
        for row in rows:
            if len(row) != len(columns):
                raise ExecutionError(
                    f"fact arity mismatch for {relation_name!r}: {row!r}"
                )
            properties = dict(zip(columns[1:], row[1:]))
            graph.add_node(label, int(row[0]), properties)
    edge_relation_names = set(mapping.edge_relation_by_name.values())
    for relation_name, rows in facts.items():
        if relation_name not in edge_relation_names:
            continue
        declaration = mapping.dl_schema.get(relation_name)
        columns = declaration.column_names()
        source_label, target_label = mapping.edge_endpoints(relation_name)
        edge_label = _edge_label_from_relation(relation_name, source_label, target_label)
        for row in rows:
            properties = dict(zip(columns[2:], row[2:]))
            graph.add_edge(
                label=edge_label,
                source_label=source_label,
                source_id=int(row[0]),
                target_label=target_label,
                target_id=int(row[1]),
                properties=properties,
            )
    return graph


def _edge_label_from_relation(relation_name: str, source_label: str, target_label: str) -> str:
    """Recover the upper-snake edge label from ``<Src>_<LABEL>_<Dst>``."""
    prefix = f"{source_label}_"
    suffix = f"_{target_label}"
    if relation_name.startswith(prefix) and relation_name.endswith(suffix):
        inner = relation_name[len(prefix):]
        if suffix:
            inner = inner[: len(inner) - len(suffix)]
        return inner
    return relation_name
