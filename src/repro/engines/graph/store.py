"""In-memory property-graph storage with adjacency indexes."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.errors import ExecutionError


@dataclass
class GraphNode:
    """A node: id, label and a property dictionary."""

    node_id: int
    label: str
    properties: Dict[str, object] = field(default_factory=dict)


@dataclass
class GraphEdge:
    """A directed edge: id, label, endpoints and a property dictionary."""

    edge_id: int
    label: str
    source: int
    target: int
    properties: Dict[str, object] = field(default_factory=dict)


class PropertyGraph:
    """A labelled property graph with per-label adjacency indexes.

    Node ids are unique per label (as in LDBC), so the graph keys nodes by
    ``(label, id)`` internally while queries address them by id within a
    labelled pattern.
    """

    def __init__(self) -> None:
        self._nodes: Dict[Tuple[str, int], GraphNode] = {}
        self._nodes_by_label: Dict[str, List[GraphNode]] = defaultdict(list)
        self._edges: List[GraphEdge] = []
        self._out_index: Dict[Tuple[str, str, int], List[GraphEdge]] = defaultdict(list)
        self._in_index: Dict[Tuple[str, str, int], List[GraphEdge]] = defaultdict(list)
        self._edge_labels: Dict[str, Tuple[str, str]] = {}

    # -- construction -----------------------------------------------------

    def add_node(self, label: str, node_id: int, properties: Optional[Dict[str, object]] = None) -> GraphNode:
        """Insert a node; duplicate ``(label, id)`` pairs raise an error."""
        key = (label, node_id)
        if key in self._nodes:
            raise ExecutionError(f"duplicate node {label}({node_id})")
        node = GraphNode(node_id=node_id, label=label, properties=dict(properties or {}))
        self._nodes[key] = node
        self._nodes_by_label[label].append(node)
        return node

    def add_edge(
        self,
        label: str,
        source_label: str,
        source_id: int,
        target_label: str,
        target_id: int,
        properties: Optional[Dict[str, object]] = None,
        edge_id: Optional[int] = None,
    ) -> GraphEdge:
        """Insert a directed edge between two existing nodes."""
        if (source_label, source_id) not in self._nodes:
            raise ExecutionError(f"unknown source node {source_label}({source_id})")
        if (target_label, target_id) not in self._nodes:
            raise ExecutionError(f"unknown target node {target_label}({target_id})")
        edge = GraphEdge(
            edge_id=edge_id if edge_id is not None else len(self._edges),
            label=label,
            source=source_id,
            target=target_id,
            properties=dict(properties or {}),
        )
        self._edges.append(edge)
        self._out_index[(label, source_label, source_id)].append(edge)
        self._in_index[(label, target_label, target_id)].append(edge)
        self._edge_labels.setdefault(label, (source_label, target_label))
        return edge

    # -- lookups -----------------------------------------------------------

    def node(self, label: str, node_id: int) -> Optional[GraphNode]:
        """Return the node ``(label, id)`` or ``None``."""
        return self._nodes.get((label, node_id))

    def nodes_with_label(self, label: str) -> List[GraphNode]:
        """Return every node carrying ``label``."""
        return list(self._nodes_by_label.get(label, ()))

    def node_labels(self) -> List[str]:
        """Return all node labels present in the graph."""
        return list(self._nodes_by_label)

    def edge_endpoint_labels(self, edge_label: str) -> Tuple[str, str]:
        """Return the (source label, target label) recorded for an edge label."""
        try:
            return self._edge_labels[edge_label]
        except KeyError as exc:
            raise ExecutionError(f"unknown edge label {edge_label!r}") from exc

    def has_edge_label(self, edge_label: str) -> bool:
        """Return whether any edge with ``edge_label`` exists."""
        return edge_label in self._edge_labels

    def out_edges(self, edge_label: str, source_label: str, source_id: int) -> List[GraphEdge]:
        """Return edges with ``edge_label`` leaving ``(source_label, source_id)``."""
        return self._out_index.get((edge_label, source_label, source_id), [])

    def in_edges(self, edge_label: str, target_label: str, target_id: int) -> List[GraphEdge]:
        """Return edges with ``edge_label`` entering ``(target_label, target_id)``."""
        return self._in_index.get((edge_label, target_label, target_id), [])

    def all_edges(self, edge_label: Optional[str] = None) -> List[GraphEdge]:
        """Return all edges, optionally restricted to one label."""
        if edge_label is None:
            return list(self._edges)
        return [edge for edge in self._edges if edge.label == edge_label]

    def node_count(self) -> int:
        """Return the total number of nodes."""
        return len(self._nodes)

    def edge_count(self) -> int:
        """Return the total number of edges."""
        return len(self._edges)

    def node_property(self, label: str, node_id: int, name: str):
        """Return property ``name`` of node ``(label, id)``; ``id`` is intrinsic."""
        if name == "id":
            return node_id
        node = self.node(label, node_id)
        if node is None:
            raise ExecutionError(f"unknown node {label}({node_id})")
        return node.properties.get(name)
