"""PGIR interpreter over a property graph (the Neo4j stand-in).

The interpreter executes a lowered PGIR query clause by clause, maintaining a
list of binding rows (identifier -> value).  Node identifiers bind to node
ids, edge identifiers bind to :class:`~repro.engines.graph.store.GraphEdge`
objects, and projected aliases bind to plain values.  Variable-length and
shortest-path patterns are evaluated with breadth-first search over the
adjacency indexes, which is the pointer-based traversal strategy the paper
attributes to graph databases.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.common.errors import ExecutionError, UnsupportedFeatureError
from repro.engines.graph.store import GraphEdge, PropertyGraph
from repro.engines.result import QueryResult
from repro.pgir.expr import (
    PGAggregate,
    PGBinary,
    PGConst,
    PGExpression,
    PGFunction,
    PGNot,
    PGParam,
    PGProperty,
    PGVariable,
)
from repro.pgir.lower import LoweringResult
from repro.schema.pg_schema import normalize_edge_label
from repro.pgir.nodes import (
    PGDirection,
    PGEdgePattern,
    PGIRQuery,
    PGMatch,
    PGNodePattern,
    PGProjectionItem,
    PGReturn,
    PGUnwind,
    PGWhere,
    PGWith,
)

Row = Dict[str, object]


class GraphEngine:
    """Execute PGIR queries against a :class:`PropertyGraph`."""

    def __init__(self, graph: PropertyGraph) -> None:
        self._graph = graph
        self._var_labels: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def execute(self, lowering: LoweringResult) -> QueryResult:
        """Execute the lowered query and return the final RETURN's rows."""
        query: PGIRQuery = lowering.query
        self._var_labels = {
            name: label
            for name, label in lowering.node_labels.items()
            if label is not None
        }
        rows: List[Row] = [{}]
        result: Optional[QueryResult] = None
        for clause in query.clauses:
            if isinstance(clause, PGMatch):
                rows = self._execute_match(clause, rows)
            elif isinstance(clause, PGWhere):
                rows = [row for row in rows if bool(self._eval(clause.condition, row))]
            elif isinstance(clause, PGWith):
                rows = self._project(clause.items, rows, distinct=clause.distinct)
            elif isinstance(clause, PGReturn):
                projected = self._project(clause.items, rows, distinct=True)
                columns = [item.alias for item in clause.items]
                result = QueryResult.from_rows(
                    columns, [tuple(row[column] for column in columns) for row in projected]
                )
            elif isinstance(clause, PGUnwind):
                raise UnsupportedFeatureError("UNWIND", backend="graph-engine")
            else:
                raise ExecutionError(f"unknown PGIR clause {clause!r}")
        if result is None:
            raise ExecutionError("PGIR query has no RETURN construct")
        return result

    # ------------------------------------------------------------------
    # MATCH
    # ------------------------------------------------------------------

    def _node_label(self, pattern: PGNodePattern) -> str:
        label = pattern.label or self._var_labels.get(pattern.identifier)
        if label is None:
            raise UnsupportedFeatureError(
                f"unlabelled node {pattern.identifier!r} (label inference failed)"
            )
        self._var_labels[pattern.identifier] = label
        return label

    @staticmethod
    def _edge_label(edge: PGEdgePattern) -> str:
        """Return the edge label in the graph store's upper-snake normal form."""
        assert edge.label is not None
        return normalize_edge_label(edge.label)

    def _resolve_edge_labels(self, edge: PGEdgePattern) -> Tuple[str, str]:
        source_label = edge.source.label or self._var_labels.get(edge.source.identifier)
        target_label = edge.target.label or self._var_labels.get(edge.target.identifier)
        if (source_label is None or target_label is None) and edge.label is not None:
            if self._graph.has_edge_label(self._edge_label(edge)):
                inferred_source, inferred_target = self._graph.edge_endpoint_labels(self._edge_label(edge))
                source_label = source_label or inferred_source
                target_label = target_label or inferred_target
        if source_label is None or target_label is None:
            raise UnsupportedFeatureError("edge pattern with unresolvable endpoint labels")
        self._var_labels[edge.source.identifier] = source_label
        self._var_labels[edge.target.identifier] = target_label
        return source_label, target_label

    def _execute_match(self, clause: PGMatch, rows: List[Row]) -> List[Row]:
        if clause.optional:
            raise UnsupportedFeatureError("OPTIONAL MATCH", backend="graph-engine")
        current = rows
        for edge in clause.edge_patterns:
            current = self._expand_edge(edge, current)
        for node in clause.node_patterns:
            current = self._expand_node(node, current)
        return current

    def _expand_node(self, pattern: PGNodePattern, rows: List[Row]) -> List[Row]:
        label = self._node_label(pattern)
        expanded: List[Row] = []
        for row in rows:
            bound = row.get(pattern.identifier)
            if bound is not None:
                if self._graph.node(label, bound) is not None:
                    expanded.append(row)
                continue
            for node in self._graph.nodes_with_label(label):
                new_row = dict(row)
                new_row[pattern.identifier] = node.node_id
                expanded.append(new_row)
        return expanded

    def _expand_edge(self, edge: PGEdgePattern, rows: List[Row]) -> List[Row]:
        if edge.label is None:
            raise UnsupportedFeatureError("relationship pattern without a type")
        source_label, target_label = self._resolve_edge_labels(edge)
        if edge.var_length or edge.shortest:
            return self._expand_var_length(edge, rows, source_label, target_label)
        expanded: List[Row] = []
        for row in rows:
            for new_row in self._expand_single_edge(edge, row, source_label, target_label):
                expanded.append(new_row)
        return expanded

    def _candidate_edges(
        self,
        edge: PGEdgePattern,
        row: Row,
        source_label: str,
        target_label: str,
        reverse: bool,
    ) -> Iterable[GraphEdge]:
        src_label = target_label if reverse else source_label
        dst_label = source_label if reverse else target_label
        source_binding = row.get(edge.source.identifier)
        target_binding = row.get(edge.target.identifier)
        if reverse:
            source_binding, target_binding = target_binding, source_binding
        label = self._edge_label(edge)
        if source_binding is not None:
            return self._graph.out_edges(label, src_label, source_binding)
        if target_binding is not None:
            return self._graph.in_edges(label, dst_label, target_binding)
        return self._graph.all_edges(label)

    def _expand_single_edge(
        self, edge: PGEdgePattern, row: Row, source_label: str, target_label: str
    ) -> Iterable[Row]:
        directions = [False]
        if edge.direction is PGDirection.UNDIRECTED:
            directions = [False, True]
        seen: Set[Tuple] = set()
        for reverse in directions:
            for graph_edge in self._candidate_edges(edge, row, source_label, target_label, reverse):
                if reverse:
                    new_source, new_target = graph_edge.target, graph_edge.source
                else:
                    new_source, new_target = graph_edge.source, graph_edge.target
                if not self._consistent(row, edge.source.identifier, new_source):
                    continue
                if not self._consistent(row, edge.target.identifier, new_target):
                    continue
                key = (new_source, new_target, graph_edge.edge_id)
                if key in seen:
                    continue
                seen.add(key)
                new_row = dict(row)
                new_row[edge.source.identifier] = new_source
                new_row[edge.target.identifier] = new_target
                new_row[edge.identifier] = graph_edge
                yield new_row

    @staticmethod
    def _consistent(row: Row, identifier: str, value: object) -> bool:
        bound = row.get(identifier)
        return bound is None or bound == value

    # -- variable-length and shortest paths -------------------------------

    def _neighbours(
        self, edge_label: str, node_label: str, node_id: int, undirected: bool, target_label: str
    ) -> List[int]:
        neighbours = [
            graph_edge.target
            for graph_edge in self._graph.out_edges(edge_label, node_label, node_id)
        ]
        if undirected:
            neighbours.extend(
                graph_edge.source
                for graph_edge in self._graph.in_edges(edge_label, target_label, node_id)
            )
        return neighbours

    def _bfs_distances(
        self,
        edge: PGEdgePattern,
        start: int,
        source_label: str,
        target_label: str,
        max_hops: Optional[int],
    ) -> Dict[int, int]:
        """Return node -> hop distance from ``start`` (shortest, BFS)."""
        label = self._edge_label(edge)
        undirected = edge.direction is PGDirection.UNDIRECTED
        distances: Dict[int, int] = {start: 0}
        queue = deque([start])
        while queue:
            current = queue.popleft()
            depth = distances[current]
            if max_hops is not None and depth >= max_hops:
                continue
            for neighbour in self._neighbours(
                label, source_label, current, undirected, target_label
            ):
                if neighbour not in distances:
                    distances[neighbour] = depth + 1
                    queue.append(neighbour)
        return distances

    def _walk_reachable(
        self,
        edge: PGEdgePattern,
        start: int,
        source_label: str,
        target_label: str,
        min_hops: int,
        max_hops: Optional[int],
    ) -> Set[int]:
        """Return nodes reachable from ``start`` by a walk of length in range.

        Walk semantics (nodes and edges may repeat) matches the DLIR
        translation of variable-length patterns, so all engines agree.
        """
        label = self._edge_label(edge)
        undirected = edge.direction is PGDirection.UNDIRECTED
        if max_hops is not None:
            # Exact level-by-level expansion up to the bounded hop count.
            reachable: Set[int] = set()
            level: Set[int] = {start}
            if min_hops <= 0:
                reachable.add(start)
            for depth in range(1, max_hops + 1):
                level = {
                    neighbour
                    for node in level
                    for neighbour in self._neighbours(
                        label, source_label, node, undirected, target_label
                    )
                }
                if not level:
                    break
                if depth >= min_hops:
                    reachable.update(level)
            return reachable
        # Unbounded: reachability closure.  With a minimum of one hop the
        # closure is seeded from the distance-1 frontier so the start node is
        # only included when a cycle leads back to it.
        if min_hops <= 0:
            frontier: Set[int] = {start}
            reachable = {start}
        else:
            frontier = set(
                self._neighbours(label, source_label, start, undirected, target_label)
            )
            reachable = set(frontier)
        queue = deque(frontier)
        while queue:
            current = queue.popleft()
            for neighbour in self._neighbours(
                label, source_label, current, undirected, target_label
            ):
                if neighbour not in reachable:
                    reachable.add(neighbour)
                    queue.append(neighbour)
        return reachable

    def _expand_var_length(
        self, edge: PGEdgePattern, rows: List[Row], source_label: str, target_label: str
    ) -> List[Row]:
        min_hops = edge.min_hops if edge.min_hops is not None else 1
        max_hops = edge.max_hops
        expanded: List[Row] = []
        for row in rows:
            source_binding = row.get(edge.source.identifier)
            starts: Iterable[int]
            if source_binding is not None:
                starts = [source_binding]
            else:
                starts = [node.node_id for node in self._graph.nodes_with_label(source_label)]
            for start in starts:
                if edge.shortest:
                    candidates = self._bfs_distances(
                        edge, start, source_label, target_label, max_hops
                    )
                    matches: Iterable[Tuple[int, Optional[int]]] = (
                        (node_id, distance)
                        for node_id, distance in candidates.items()
                        if distance >= min_hops
                        and (max_hops is None or distance <= max_hops)
                    )
                else:
                    reachable = self._walk_reachable(
                        edge, start, source_label, target_label, min_hops, max_hops
                    )
                    matches = ((node_id, None) for node_id in reachable)
                for node_id, distance in matches:
                    if not self._consistent(row, edge.target.identifier, node_id):
                        continue
                    if self._graph.node(target_label, node_id) is None:
                        continue
                    new_row = dict(row)
                    new_row[edge.source.identifier] = start
                    new_row[edge.target.identifier] = node_id
                    if edge.shortest and distance is not None:
                        new_row[f"{edge.identifier}_len"] = distance
                        if edge.path_variable:
                            new_row[edge.path_variable] = distance
                    expanded.append(new_row)
        return expanded

    # ------------------------------------------------------------------
    # Expressions and projection
    # ------------------------------------------------------------------

    def _eval(self, expression: PGExpression, row: Row):
        if isinstance(expression, PGConst):
            return expression.value
        if isinstance(expression, PGParam):
            # The graph interpreter has no runtime parameter binding: the
            # session (or run_on_graph_engine) re-lowers with values
            # inlined, so reaching a placeholder means none was supplied.
            raise ExecutionError(
                f"no value bound for query parameter ${expression.name}"
            )
        if isinstance(expression, PGVariable):
            if expression.name not in row:
                raise ExecutionError(f"variable {expression.name!r} is not bound")
            return row[expression.name]
        if isinstance(expression, PGProperty):
            return self._eval_property(expression, row)
        if isinstance(expression, PGBinary):
            return self._eval_binary(expression, row)
        if isinstance(expression, PGNot):
            return not bool(self._eval(expression.operand, row))
        if isinstance(expression, PGFunction):
            return self._eval_function(expression, row)
        if isinstance(expression, PGAggregate):
            raise ExecutionError("aggregate evaluated outside of a projection")
        raise ExecutionError(f"cannot evaluate PGIR expression {expression!r}")

    def _eval_property(self, expression: PGProperty, row: Row):
        value = row.get(expression.variable)
        if isinstance(value, GraphEdge):
            if expression.property_name == "id":
                return value.properties.get("id", value.edge_id)
            return value.properties.get(expression.property_name)
        label = self._var_labels.get(expression.variable)
        if label is None or value is None:
            raise ExecutionError(
                f"cannot resolve property {expression.variable}.{expression.property_name}"
            )
        return self._graph.node_property(label, int(value), expression.property_name)

    def _eval_binary(self, expression: PGBinary, row: Row):
        op = expression.op.upper()
        if op == "AND":
            return bool(self._eval(expression.left, row)) and bool(
                self._eval(expression.right, row)
            )
        if op == "OR":
            return bool(self._eval(expression.left, row)) or bool(
                self._eval(expression.right, row)
            )
        if op == "IN":
            right = expression.right
            if isinstance(right, PGFunction) and right.name == "list":
                values = [self._eval(arg, row) for arg in right.args]
            else:
                values = self._eval(right, row)
            return self._eval(expression.left, row) in values
        left = self._eval(expression.left, row)
        right = self._eval(expression.right, row)
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if isinstance(left, int) and isinstance(right, int):
                return left // right
            return left / right
        if op == "%":
            return left % right
        raise ExecutionError(f"unknown operator {expression.op!r}")

    def _eval_function(self, expression: PGFunction, row: Row):
        name = expression.name.lower()
        if name == "id" and len(expression.args) == 1:
            return self._eval(expression.args[0], row)
        if name == "length" and len(expression.args) == 1:
            return self._eval(expression.args[0], row)
        if name == "isnull" and len(expression.args) == 1:
            return self._eval(expression.args[0], row) is None
        if name == "list":
            return [self._eval(arg, row) for arg in expression.args]
        raise UnsupportedFeatureError(f"function {expression.name!r}", backend="graph-engine")

    def _project(
        self, items: Tuple[PGProjectionItem, ...], rows: List[Row], distinct: bool
    ) -> List[Row]:
        aggregate_items = [
            item for item in items if isinstance(item.expression, PGAggregate)
        ]
        if aggregate_items:
            projected = self._project_aggregated(items, rows)
        else:
            projected = []
            for row in rows:
                new_row: Row = {}
                for item in items:
                    new_row[item.alias] = self._normalise(self._eval(item.expression, row))
                projected.append(new_row)
        self._update_labels(items)
        if distinct:
            seen = set()
            unique: List[Row] = []
            for row in projected:
                key = tuple(sorted(row.items(), key=lambda item: item[0]))
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            return unique
        return projected

    def _project_aggregated(
        self, items: Tuple[PGProjectionItem, ...], rows: List[Row]
    ) -> List[Row]:
        key_items = [item for item in items if not isinstance(item.expression, PGAggregate)]
        groups: Dict[Tuple, List[Row]] = defaultdict(list)
        for row in rows:
            key = tuple(
                self._normalise(self._eval(item.expression, row)) for item in key_items
            )
            groups[key].append(row)
        projected: List[Row] = []
        for key, group_rows in groups.items():
            new_row: Row = {}
            for item, value in zip(key_items, key):
                new_row[item.alias] = value
            for item in items:
                if not isinstance(item.expression, PGAggregate):
                    continue
                new_row[item.alias] = self._eval_aggregate(item.expression, group_rows)
            projected.append(new_row)
        return projected

    def _eval_aggregate(self, aggregate: PGAggregate, rows: List[Row]):
        if aggregate.argument is None:
            return len(rows)
        values = [self._normalise(self._eval(aggregate.argument, row)) for row in rows]
        if aggregate.distinct:
            values = list(dict.fromkeys(values))
        if aggregate.func == "count":
            return len(values)
        if aggregate.func == "sum":
            return sum(values) if values else 0
        if aggregate.func == "min":
            return min(values) if values else None
        if aggregate.func == "max":
            return max(values) if values else None
        if aggregate.func == "avg":
            return sum(values) / len(values) if values else None
        if aggregate.func == "collect":
            return ",".join(str(value) for value in sorted(values, key=str))
        raise ExecutionError(f"unknown aggregate {aggregate.func!r}")

    def _update_labels(self, items: Tuple[PGProjectionItem, ...]) -> None:
        new_labels: Dict[str, str] = {}
        for item in items:
            expression = item.expression
            if isinstance(expression, PGVariable):
                label = self._var_labels.get(expression.name)
                if label is not None:
                    new_labels[item.alias] = label
            elif isinstance(expression, PGProperty) and expression.property_name == "id":
                label = self._var_labels.get(expression.variable)
                if label is not None:
                    new_labels[item.alias] = label
        self._var_labels.update(new_labels)

    @staticmethod
    def _normalise(value):
        if isinstance(value, GraphEdge):
            return value.properties.get("id", value.edge_id)
        return value


def execute_pgir(lowering: LoweringResult, graph: PropertyGraph) -> QueryResult:
    """Convenience wrapper: execute a lowered PGIR query against ``graph``."""
    return GraphEngine(graph).execute(lowering)
