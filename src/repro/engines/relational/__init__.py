"""In-process relational engine executing SQIR plans.

This engine stands in for DuckDB / Tableau Hyper in the paper's evaluation:
it executes exactly the SQIR (CTE chain) that Raqlet produces for the SQL
backend, with hash joins, filter/projection/distinct operators and a
delta-based fixpoint for recursive CTEs.
"""

from repro.engines.relational.table import Database, Table
from repro.engines.relational.executor import RelationalEngine, execute_sqir

__all__ = ["Table", "Database", "RelationalEngine", "execute_sqir"]
