"""Tables and databases for the relational engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.common.errors import ExecutionError


@dataclass
class Table:
    """A named-column table holding rows as tuples."""

    columns: List[str]
    rows: List[Tuple] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(set(self.columns)) != len(self.columns):
            raise ExecutionError(f"duplicate column names in {self.columns}")

    @property
    def arity(self) -> int:
        """Number of columns."""
        return len(self.columns)

    def __len__(self) -> int:
        return len(self.rows)

    def column_index(self, name: str) -> int:
        """Return the position of column ``name``."""
        try:
            return self.columns.index(name)
        except ValueError as exc:
            raise ExecutionError(f"unknown column {name!r}") from exc

    def insert(self, row: Sequence) -> None:
        """Append one row (arity-checked)."""
        if len(row) != self.arity:
            raise ExecutionError(
                f"row arity {len(row)} does not match table arity {self.arity}"
            )
        self.rows.append(tuple(row))

    def insert_many(self, rows: Iterable[Sequence]) -> None:
        """Append many rows."""
        for row in rows:
            self.insert(row)

    def distinct(self) -> "Table":
        """Return a copy with duplicate rows removed (first occurrence kept)."""
        seen = set()
        unique: List[Tuple] = []
        for row in self.rows:
            if row not in seen:
                seen.add(row)
                unique.append(row)
        return Table(columns=list(self.columns), rows=unique)


class Database:
    """A named collection of tables."""

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}

    def create_table(self, name: str, columns: Sequence[str]) -> Table:
        """Create an empty table; re-creating an existing name is an error."""
        if name in self._tables:
            raise ExecutionError(f"table {name!r} already exists")
        table = Table(columns=list(columns))
        self._tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table if it exists."""
        self._tables.pop(name, None)

    def table(self, name: str) -> Table:
        """Return the table called ``name``."""
        try:
            return self._tables[name]
        except KeyError as exc:
            raise ExecutionError(f"unknown table {name!r}") from exc

    def has_table(self, name: str) -> bool:
        """Return whether a table called ``name`` exists."""
        return name in self._tables

    def table_names(self) -> List[str]:
        """Return all table names."""
        return list(self._tables)

    def insert_many(self, name: str, rows: Iterable[Sequence]) -> None:
        """Append rows into an existing table."""
        self.table(name).insert_many(rows)
