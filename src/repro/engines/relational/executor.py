"""SQIR executor: hash joins, filters, aggregation and recursive-CTE fixpoints.

The executor evaluates a :class:`~repro.sqir.nodes.SQIRQuery` against a
:class:`~repro.engines.relational.table.Database`:

* each SELECT member is planned as a left-deep join: tables are joined one at
  a time, preferring tables connected to the already-joined prefix by
  equi-join predicates (executed as hash joins), falling back to a cross
  product otherwise,
* remaining WHERE conjuncts are applied as filters over the joined rows,
* ``NOT EXISTS`` subqueries are evaluated with memoisation on the correlated
  values,
* ``GROUP BY`` computes SQL aggregates (COUNT/SUM/MIN/MAX/AVG/GROUP_CONCAT),
* recursive CTEs run a delta-based fixpoint with set semantics (UNION).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.common.errors import ExecutionError
from repro.engines.relational.table import Database, Table
from repro.engines.result import QueryResult
from repro.sqir.nodes import (
    CTE,
    ColumnRef,
    NotExists,
    SelectItem,
    SelectQuery,
    SQLBinary,
    SQLExpr,
    SQLFunction,
    SQLLiteral,
    SQLParam,
    SQIRQuery,
    TableRef,
)

Row = Tuple
Env = Dict[Tuple[str, str], object]

_AGGREGATES = {"COUNT", "SUM", "MIN", "MAX", "AVG", "GROUP_CONCAT"}


def _is_aggregate(expression: SQLExpr) -> bool:
    return isinstance(expression, SQLFunction) and expression.name.upper() in _AGGREGATES


class _SelectEvaluator:
    """Evaluate one SELECT member against resolved input tables."""

    def __init__(self, executor: "RelationalEngine", select: SelectQuery) -> None:
        self._executor = executor
        self._select = select

    # -- expression evaluation -------------------------------------------

    def _eval(self, expression: SQLExpr, env: Env):
        if isinstance(expression, SQLLiteral):
            return expression.value
        if isinstance(expression, SQLParam):
            raise ExecutionError(
                f"unbound query parameter {expression} — bind parameters "
                "(repro.dlir.bind_parameters) before relational execution"
            )
        if isinstance(expression, ColumnRef):
            key = (expression.table, expression.column)
            if key not in env:
                raise ExecutionError(f"unknown column reference {expression}")
            return env[key]
        if isinstance(expression, SQLBinary):
            return self._eval_binary(expression, env)
        if isinstance(expression, NotExists):
            return self._eval_not_exists(expression, env)
        if isinstance(expression, SQLFunction):
            raise ExecutionError(
                f"aggregate {expression.name} used outside of a GROUP BY context"
            )
        raise ExecutionError(f"cannot evaluate SQL expression {expression!r}")

    def _eval_binary(self, expression: SQLBinary, env: Env):
        op = expression.op.upper()
        if op == "AND":
            return bool(self._eval(expression.left, env)) and bool(
                self._eval(expression.right, env)
            )
        if op == "OR":
            return bool(self._eval(expression.left, env)) or bool(
                self._eval(expression.right, env)
            )
        left = self._eval(expression.left, env)
        right = self._eval(expression.right, env)
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if isinstance(left, int) and isinstance(right, int):
                return left // right
            return left / right
        if op == "%":
            return left % right
        raise ExecutionError(f"unknown SQL operator {expression.op!r}")

    def _eval_not_exists(self, expression: NotExists, env: Env) -> bool:
        rows = self._executor.evaluate_select(expression.subquery, outer_env=env)
        return len(rows) == 0

    # -- join planning ------------------------------------------------------

    def _split_conditions(
        self,
    ) -> Tuple[List[Tuple[ColumnRef, ColumnRef]], List[SQLExpr]]:
        local_aliases = {table.alias for table in self._select.from_tables}
        equi: List[Tuple[ColumnRef, ColumnRef]] = []
        other: List[SQLExpr] = []
        for condition in self._select.where:
            if (
                isinstance(condition, SQLBinary)
                and condition.op == "="
                and isinstance(condition.left, ColumnRef)
                and isinstance(condition.right, ColumnRef)
                and condition.left.table != condition.right.table
                # Conditions correlating with an *outer* query (NOT EXISTS
                # subqueries) are not join keys here; they are applied as
                # residual filters once the outer bindings are merged in.
                and condition.left.table in local_aliases
                and condition.right.table in local_aliases
            ):
                equi.append((condition.left, condition.right))
            else:
                other.append(condition)
        return equi, other

    def _single_table_conditions(
        self, conditions: List[SQLExpr]
    ) -> Tuple[Dict[str, List[SQLExpr]], List[SQLExpr]]:
        """Split filters that reference only one table alias (pushed to scans)."""
        local_aliases = {table.alias for table in self._select.from_tables}
        per_table: Dict[str, List[SQLExpr]] = defaultdict(list)
        residual: List[SQLExpr] = []
        for condition in conditions:
            aliases = set(self._referenced_aliases(condition))
            if (
                len(aliases) == 1
                and next(iter(aliases)) in local_aliases
                and not self._contains_not_exists(condition)
            ):
                per_table[next(iter(aliases))].append(condition)
            else:
                residual.append(condition)
        return per_table, residual

    def _referenced_aliases(self, expression: SQLExpr) -> Iterable[str]:
        if isinstance(expression, ColumnRef):
            yield expression.table
        elif isinstance(expression, SQLBinary):
            yield from self._referenced_aliases(expression.left)
            yield from self._referenced_aliases(expression.right)
        elif isinstance(expression, NotExists):
            # Correlated references belong to the outer query's aliases.
            for member_where in expression.subquery.where:
                yield from self._referenced_aliases(member_where)

    @staticmethod
    def _contains_not_exists(expression: SQLExpr) -> bool:
        if isinstance(expression, NotExists):
            return True
        if isinstance(expression, SQLBinary):
            return _SelectEvaluator._contains_not_exists(
                expression.left
            ) or _SelectEvaluator._contains_not_exists(expression.right)
        return False

    def _scan(self, table_ref: TableRef, filters: List[SQLExpr]) -> List[Env]:
        table = self._executor.resolve_table(table_ref.name)
        rows: List[Env] = []
        for row in table.rows:
            env: Env = {
                (table_ref.alias, column): value
                for column, value in zip(table.columns, row)
            }
            if all(self._eval(condition, env) for condition in filters):
                rows.append(env)
        return rows

    def _hash_join(
        self,
        left_rows: List[Env],
        right_rows: List[Env],
        join_keys: List[Tuple[ColumnRef, ColumnRef]],
    ) -> List[Env]:
        if not join_keys:
            return [{**left, **right} for left in left_rows for right in right_rows]
        left_exprs = [pair[0] for pair in join_keys]
        right_exprs = [pair[1] for pair in join_keys]
        index: Dict[Tuple, List[Env]] = defaultdict(list)
        for row in right_rows:
            key = tuple(row[(ref.table, ref.column)] for ref in right_exprs)
            index[key].append(row)
        joined: List[Env] = []
        for row in left_rows:
            key = tuple(row[(ref.table, ref.column)] for ref in left_exprs)
            for match in index.get(key, ()):
                joined.append({**row, **match})
        return joined

    def _plan_joins(self, per_table_filters: Dict[str, List[SQLExpr]], equi) -> List[Env]:
        tables = list(self._select.from_tables)
        if not tables:
            return [{}]
        remaining = tables[1:]
        current = self._scan(tables[0], per_table_filters.get(tables[0].alias, []))
        joined_aliases = {tables[0].alias}
        pending_equi = list(equi)
        while remaining:
            chosen_index = None
            for index, candidate in enumerate(remaining):
                keys = self._keys_for(candidate.alias, joined_aliases, pending_equi)
                if keys:
                    chosen_index = index
                    break
            if chosen_index is None:
                chosen_index = 0
            candidate = remaining.pop(chosen_index)
            keys = self._keys_for(candidate.alias, joined_aliases, pending_equi)
            candidate_rows = self._scan(
                candidate, per_table_filters.get(candidate.alias, [])
            )
            normalized_keys: List[Tuple[ColumnRef, ColumnRef]] = []
            for left_ref, right_ref in keys:
                if left_ref.table == candidate.alias:
                    normalized_keys.append((right_ref, left_ref))
                else:
                    normalized_keys.append((left_ref, right_ref))
                pending_equi = [
                    pair for pair in pending_equi if pair != (left_ref, right_ref)
                ]
            current = self._hash_join(current, candidate_rows, normalized_keys)
            joined_aliases.add(candidate.alias)
        # Any leftover equi-join conditions (e.g. both sides already joined)
        # are applied as plain filters.
        for left_ref, right_ref in pending_equi:
            if left_ref.table in joined_aliases and right_ref.table in joined_aliases:
                current = [
                    env
                    for env in current
                    if env[(left_ref.table, left_ref.column)]
                    == env[(right_ref.table, right_ref.column)]
                ]
        return current

    @staticmethod
    def _keys_for(alias: str, joined: Set[str], equi) -> List[Tuple[ColumnRef, ColumnRef]]:
        keys = []
        for left_ref, right_ref in equi:
            if left_ref.table == alias and right_ref.table in joined:
                keys.append((left_ref, right_ref))
            elif right_ref.table == alias and left_ref.table in joined:
                keys.append((left_ref, right_ref))
        return keys

    # -- aggregation and projection ---------------------------------------

    def _project(self, envs: List[Env]) -> List[Row]:
        select = self._select
        has_aggregate = any(_is_aggregate(item.expression) for item in select.items)
        if has_aggregate or select.group_by:
            return self._project_grouped(envs)
        rows = [
            tuple(self._eval(item.expression, env) for item in select.items)
            for env in envs
        ]
        if select.distinct:
            return list(dict.fromkeys(rows))
        return rows

    def _project_grouped(self, envs: List[Env]) -> List[Row]:
        select = self._select
        groups: Dict[Tuple, List[Env]] = defaultdict(list)
        for env in envs:
            key = tuple(self._eval(expr, env) for expr in select.group_by)
            groups[key].append(env)
        if not select.group_by and not groups:
            groups[()] = []
        rows: List[Row] = []
        for key, group_envs in groups.items():
            row = []
            for item in select.items:
                if _is_aggregate(item.expression):
                    row.append(self._eval_aggregate(item.expression, group_envs))
                else:
                    row.append(self._eval(item.expression, group_envs[0]) if group_envs else None)
            rows.append(tuple(row))
        return list(dict.fromkeys(rows)) if select.distinct else rows

    def _eval_aggregate(self, expression: SQLFunction, envs: List[Env]):
        name = expression.name.upper()
        if expression.star:
            return len(envs)
        values = [self._eval(expression.args[0], env) for env in envs]
        if expression.distinct:
            values = list(dict.fromkeys(values))
        if name == "COUNT":
            return len(values)
        if name == "SUM":
            return sum(values) if values else 0
        if name == "MIN":
            return min(values) if values else None
        if name == "MAX":
            return max(values) if values else None
        if name == "AVG":
            return sum(values) / len(values) if values else None
        if name == "GROUP_CONCAT":
            return ",".join(str(value) for value in sorted(values, key=str))
        raise ExecutionError(f"unknown aggregate {expression.name!r}")

    # -- entry point ----------------------------------------------------------

    def run(self, outer_env: Optional[Env] = None) -> List[Row]:
        equi, other = self._split_conditions()
        per_table, residual = self._single_table_conditions(other)
        envs = self._plan_joins(per_table, equi)
        if outer_env:
            envs = [{**outer_env, **env} for env in envs]
        if residual:
            envs = [
                env
                for env in envs
                if all(self._eval(condition, env) for condition in residual)
            ]
        return self._project(envs)


class RelationalEngine:
    """Execute SQIR queries against an in-memory database."""

    def __init__(self, database: Database) -> None:
        self._database = database
        self._cte_results: Dict[str, Table] = {}

    # -- table resolution ---------------------------------------------------

    def resolve_table(self, name: str) -> Table:
        """Return a CTE result if one exists, otherwise a base table."""
        if name in self._cte_results:
            return self._cte_results[name]
        return self._database.table(name)

    # -- evaluation ---------------------------------------------------------

    def evaluate_select(
        self, select: SelectQuery, outer_env: Optional[Env] = None
    ) -> List[Row]:
        """Evaluate a single SELECT member and return its rows."""
        return _SelectEvaluator(self, select).run(outer_env)

    def _evaluate_cte(self, cte: CTE) -> Table:
        rows: List[Row] = []
        seen: Set[Row] = set()
        for member in cte.base_members:
            for row in self.evaluate_select(member):
                if row not in seen:
                    seen.add(row)
                    rows.append(row)
        if cte.is_recursive:
            # Delta-based fixpoint: the recursive members see only the delta
            # of the previous iteration (standard SQL recursive CTE
            # semantics with UNION / set semantics).
            delta = list(rows)
            iteration = 0
            while delta:
                iteration += 1
                if iteration > 1_000_000:  # pragma: no cover - safety net
                    raise ExecutionError("recursive CTE did not converge")
                self._cte_results[cte.name] = Table(columns=list(cte.columns), rows=delta)
                new_rows: List[Row] = []
                for member in cte.recursive_members:
                    for row in self.evaluate_select(member):
                        if row not in seen:
                            seen.add(row)
                            new_rows.append(row)
                rows.extend(new_rows)
                delta = new_rows
        table = Table(columns=list(cte.columns), rows=rows)
        self._cte_results[cte.name] = table
        return table

    def execute(self, query: SQIRQuery) -> QueryResult:
        """Execute ``query`` and return the final SELECT's rows."""
        self._cte_results = {}
        for cte in query.ctes:
            self._evaluate_cte(cte)
        rows = self.evaluate_select(query.final)
        columns = [item.alias for item in query.final.items]
        return QueryResult.from_rows(columns, rows)


def execute_sqir(query: SQIRQuery, database: Database) -> QueryResult:
    """Convenience wrapper: execute ``query`` against ``database``."""
    return RelationalEngine(database).execute(query)
