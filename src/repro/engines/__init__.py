"""Execution substrates for the Raqlet evaluation.

The paper runs its generated queries on Neo4j (Cypher), Soufflé (Datalog) and
DuckDB / HyPer (SQL).  None of those systems is available in this offline
reproduction, so the package provides functionally equivalent substrates that
execute the *same artifacts* Raqlet produces:

* :mod:`repro.engines.datalog` -- a bottom-up semi-naive Datalog engine with
  stratified negation, aggregation and min/max subsumption (stands in for
  Soufflé; executes DLIR directly).
* :mod:`repro.engines.relational` -- a relational engine that executes SQIR
  (CTE chains, hash joins, recursive-CTE fixpoints; stands in for DuckDB /
  HyPer).
* :mod:`repro.engines.graph` -- a property-graph store plus a PGIR
  interpreter with BFS-based variable-length and shortest-path matching
  (stands in for Neo4j, executing the original query graph-natively).
* :mod:`repro.engines.sqlite_exec` -- loads the facts into stdlib SQLite and
  runs the generated SQL text on a real external SQL system.

All engines return a :class:`repro.engines.result.QueryResult` so results can
be compared across paradigms.
"""

from repro.engines.result import QueryResult

__all__ = ["QueryResult"]
