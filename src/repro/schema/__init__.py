"""Schema models and the data-model transformation (paper Figure 2).

Raqlet takes a PG-Schema describing a property graph (node types, edge types
and their properties) and derives a DL-Schema: one extensional relation (EDB)
per node type and per edge type.  Both models, a parser for the textual
``CREATE GRAPH`` PG-Schema syntax used in the paper, and the translation live
in this package.
"""

from repro.schema.dl_schema import DLColumn, DLRelation, DLSchema, DLType
from repro.schema.pg_schema import (
    EdgeType,
    NodeType,
    PGSchema,
    PropertyDef,
    PropertyType,
)
from repro.schema.pg_parser import parse_pg_schema
from repro.schema.translate import SchemaMapping, pg_to_dl_schema

__all__ = [
    "PropertyType",
    "PropertyDef",
    "NodeType",
    "EdgeType",
    "PGSchema",
    "parse_pg_schema",
    "DLType",
    "DLColumn",
    "DLRelation",
    "DLSchema",
    "SchemaMapping",
    "pg_to_dl_schema",
]
