"""PG-Schema to DL-Schema translation (paper Figure 2).

Every node type becomes an EDB relation whose first column is the node's
``id`` followed by the remaining properties in declaration order.  Every edge
type becomes an EDB relation named ``<Source>_<LABEL>_<Target>`` (the label is
upper-snake-cased, as in the paper's ``Person_IS_LOCATED_IN_City``) whose
first two columns ``id1`` and ``id2`` hold the source and target node ids,
followed by the edge's own properties.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.common.errors import SchemaError
from repro.schema.dl_schema import DLColumn, DLRelation, DLSchema, DLType
from repro.schema.pg_schema import EdgeType, NodeType, PGSchema, normalize_edge_label


def edge_label_to_snake(label: str) -> str:
    """Convert an edge label such as ``isLocatedIn`` to ``IS_LOCATED_IN``.

    Already upper-snake-cased labels (``IS_LOCATED_IN``, ``KNOWS``) pass
    through unchanged.
    """
    return normalize_edge_label(label)


def edge_relation_name(schema: PGSchema, edge_type: EdgeType) -> str:
    """Return the DL-Schema relation name for ``edge_type``."""
    source = schema.resolve_node_label(edge_type.source)
    target = schema.resolve_node_label(edge_type.target)
    return f"{source}_{edge_label_to_snake(edge_type.label)}_{target}"


@dataclass
class SchemaMapping:
    """The result of the data-model transformation.

    Besides the flat :class:`DLSchema`, the mapping keeps enough provenance
    for query translation: which relation encodes which node/edge label, where
    each property landed (column index), and which columns hold node keys.
    """

    pg_schema: PGSchema
    dl_schema: DLSchema
    node_relation_by_label: Dict[str, str] = field(default_factory=dict)
    edge_relation_by_name: Dict[str, str] = field(default_factory=dict)

    # -- node helpers ----------------------------------------------------

    def node_relation(self, label: str) -> DLRelation:
        """Return the EDB relation for the node label ``label``."""
        try:
            name = self.node_relation_by_label[label]
        except KeyError as exc:
            raise SchemaError(f"no relation for node label {label!r}") from exc
        return self.dl_schema.get(name)

    def node_property_index(self, label: str, property_name: str) -> int:
        """Return the column index of ``property_name`` in the node relation."""
        return self.node_relation(label).column_index(property_name)

    def node_key_index(self, label: str) -> int:
        """Return the column index of the node key (always 0 by construction)."""
        del label
        return 0

    # -- edge helpers ----------------------------------------------------

    def edge_relation(
        self,
        label: str,
        source_label: Optional[str] = None,
        target_label: Optional[str] = None,
    ) -> DLRelation:
        """Return the EDB relation for the edge ``label`` between the endpoints."""
        edge_type = self.pg_schema.edge_type_between(label, source_label, target_label)
        name = edge_relation_name(self.pg_schema, edge_type)
        return self.dl_schema.get(name)

    def edge_endpoints(self, relation_name: str) -> Tuple[str, str]:
        """Return the (source label, target label) of an edge relation."""
        for edge_type in self.pg_schema.edge_types:
            if edge_relation_name(self.pg_schema, edge_type) == relation_name:
                return (
                    self.pg_schema.resolve_node_label(edge_type.source),
                    self.pg_schema.resolve_node_label(edge_type.target),
                )
        raise SchemaError(f"{relation_name!r} is not an edge relation")

    def is_edge_relation(self, relation_name: str) -> bool:
        """Return whether ``relation_name`` encodes an edge type."""
        return relation_name in set(self.edge_relation_by_name.values())

    def is_node_relation(self, relation_name: str) -> bool:
        """Return whether ``relation_name`` encodes a node type."""
        return relation_name in set(self.node_relation_by_label.values())

    def edge_property_index(
        self,
        label: str,
        property_name: str,
        source_label: Optional[str] = None,
        target_label: Optional[str] = None,
    ) -> int:
        """Return the column index of an edge property (after id1, id2)."""
        relation = self.edge_relation(label, source_label, target_label)
        return relation.column_index(property_name)


def _node_relation(node_type: NodeType) -> DLRelation:
    columns = []
    names_seen = set()
    ordered = list(node_type.properties)
    # The node id column always comes first, even if the schema listed it later.
    id_props = [prop for prop in ordered if prop.name == "id"]
    other_props = [prop for prop in ordered if prop.name != "id"]
    if id_props:
        head = id_props[0]
        columns.append(DLColumn(head.name, DLType.from_property_type(head.type)))
        names_seen.add(head.name)
    else:
        columns.append(DLColumn("id", DLType.NUMBER))
        names_seen.add("id")
    for prop in other_props:
        if prop.name in names_seen:
            raise SchemaError(
                f"duplicate property {prop.name!r} on node type {node_type.label!r}"
            )
        names_seen.add(prop.name)
        columns.append(DLColumn(prop.name, DLType.from_property_type(prop.type)))
    return DLRelation(name=node_type.label, columns=tuple(columns), is_edb=True)


def _edge_relation(schema: PGSchema, edge_type: EdgeType) -> DLRelation:
    columns = [DLColumn("id1", DLType.NUMBER), DLColumn("id2", DLType.NUMBER)]
    for prop in edge_type.properties:
        if prop.name in ("id1", "id2"):
            raise SchemaError(
                f"edge type {edge_type.label!r} may not declare a property "
                f"named {prop.name!r}"
            )
        columns.append(DLColumn(prop.name, DLType.from_property_type(prop.type)))
    return DLRelation(
        name=edge_relation_name(schema, edge_type),
        columns=tuple(columns),
        is_edb=True,
    )


def pg_to_dl_schema(pg_schema: PGSchema) -> SchemaMapping:
    """Translate ``pg_schema`` into a DL-Schema plus provenance mapping."""
    dl_schema = DLSchema()
    mapping = SchemaMapping(pg_schema=pg_schema, dl_schema=dl_schema)
    for node_type in pg_schema.node_types:
        relation = _node_relation(node_type)
        dl_schema.add(relation)
        mapping.node_relation_by_label[node_type.label] = relation.name
    for edge_type in pg_schema.edge_types:
        relation = _edge_relation(pg_schema, edge_type)
        if relation.name in dl_schema:
            raise SchemaError(f"duplicate edge relation {relation.name!r}")
        dl_schema.add(relation)
        mapping.edge_relation_by_name[edge_type.type_name] = relation.name
    return mapping
