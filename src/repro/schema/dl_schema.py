"""Datalog schema (DL-Schema) model.

The DL-Schema is the relational view of a property graph used by DLIR: one
extensional relation (EDB) per node type and per edge type, plus any
intensional relations (IDBs) declared during query compilation.  Column types
follow Soufflé's convention of ``number`` and ``symbol``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.errors import SchemaError
from repro.schema.pg_schema import PropertyType


class DLType(enum.Enum):
    """Column types of DL-Schema relations (Soufflé naming)."""

    NUMBER = "number"
    SYMBOL = "symbol"
    FLOAT = "float"

    @classmethod
    def from_property_type(cls, property_type: PropertyType) -> "DLType":
        """Map a PG-Schema property type to a DL-Schema column type."""
        mapping = {
            PropertyType.INT: cls.NUMBER,
            PropertyType.DATE: cls.NUMBER,
            PropertyType.BOOL: cls.NUMBER,
            PropertyType.STRING: cls.SYMBOL,
            PropertyType.FLOAT: cls.FLOAT,
        }
        return mapping[property_type]

    def python_type(self) -> type:
        """Return the Python type used to represent values of this column."""
        if self is DLType.NUMBER:
            return int
        if self is DLType.FLOAT:
            return float
        return str

    def sql_type(self) -> str:
        """Return the SQL column type used when creating backend tables."""
        if self is DLType.NUMBER:
            return "BIGINT"
        if self is DLType.FLOAT:
            return "DOUBLE PRECISION"
        return "VARCHAR"


@dataclass(frozen=True)
class DLColumn:
    """A named, typed column of a DL-Schema relation."""

    name: str
    type: DLType

    def __str__(self) -> str:
        return f"{self.name}:{self.type.value}"


@dataclass(frozen=True)
class DLRelation:
    """A relation declaration: name plus ordered typed columns.

    ``is_edb`` records whether the relation is extensional (stored facts,
    derived from the schema) or intensional (defined by rules).
    """

    name: str
    columns: Tuple[DLColumn, ...]
    is_edb: bool = True

    @property
    def arity(self) -> int:
        """Number of columns."""
        return len(self.columns)

    def column_names(self) -> List[str]:
        """Return column names in order."""
        return [column.name for column in self.columns]

    def column_types(self) -> List[DLType]:
        """Return column types in order."""
        return [column.type for column in self.columns]

    def column_index(self, name: str) -> int:
        """Return the position of column ``name`` or raise :class:`SchemaError`."""
        for index, column in enumerate(self.columns):
            if column.name == name:
                return index
        raise SchemaError(f"relation {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        """Return whether the relation declares column ``name``."""
        return any(column.name == name for column in self.columns)

    def __str__(self) -> str:
        columns = ", ".join(str(column) for column in self.columns)
        return f"{self.name}({columns})"


@dataclass
class DLSchema:
    """A collection of DL-Schema relation declarations keyed by name."""

    relations: Dict[str, DLRelation] = field(default_factory=dict)

    def add(self, relation: DLRelation) -> None:
        """Register ``relation``; duplicate names raise :class:`SchemaError`."""
        if relation.name in self.relations:
            raise SchemaError(f"duplicate relation {relation.name!r}")
        self.relations[relation.name] = relation

    def get(self, name: str) -> DLRelation:
        """Return the relation declaration ``name`` or raise :class:`SchemaError`."""
        try:
            return self.relations[name]
        except KeyError as exc:
            raise SchemaError(f"unknown relation {name!r}") from exc

    def maybe_get(self, name: str) -> Optional[DLRelation]:
        """Return the relation declaration ``name`` or ``None``."""
        return self.relations.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def __iter__(self):
        return iter(self.relations.values())

    def __len__(self) -> int:
        return len(self.relations)

    def edb_relations(self) -> List[DLRelation]:
        """Return extensional relations in insertion order."""
        return [relation for relation in self.relations.values() if relation.is_edb]

    def idb_relations(self) -> List[DLRelation]:
        """Return intensional relations in insertion order."""
        return [relation for relation in self.relations.values() if not relation.is_edb]

    def copy(self) -> "DLSchema":
        """Return a shallow copy that can be extended without affecting this one."""
        return DLSchema(relations=dict(self.relations))

    @staticmethod
    def build(relations: Iterable[Tuple[str, List[Tuple[str, str]]]]) -> "DLSchema":
        """Build a schema from ``(name, [(column, type_name), ...])`` tuples."""
        schema = DLSchema()
        for name, columns in relations:
            schema.add(
                DLRelation(
                    name=name,
                    columns=tuple(
                        DLColumn(column, DLType(type_name)) for column, type_name in columns
                    ),
                )
            )
        return schema
