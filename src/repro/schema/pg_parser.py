"""Parser for the textual PG-Schema fragment used in the paper (Figure 2a).

The supported syntax is::

    CREATE GRAPH {
      (personType : Person { id INT, firstName STRING, locationIP STRING }),
      (cityType : City { id INT, name STRING }),
      (:personType)-[locationType : isLocatedIn { id INT }]->(:cityType)
    }

Node type declarations are parenthesised, edge type declarations use the
``(:source)-[typeName : Label { props }]->(:target)`` arrow form.  Property
lists are optional.  The parser is a small hand-written recursive descent
parser over a regex tokenizer; it reports positions for every error.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.errors import ParseError
from repro.common.location import SourceLocation
from repro.schema.pg_schema import (
    EdgeType,
    NodeType,
    PGSchema,
    PropertyDef,
    PropertyType,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|\#[^\n]*)
  | (?P<arrow>->)
  | (?P<punct>[(){}\[\]:,\-])
  | (?P<word>[A-Za-z_][A-Za-z_0-9]*)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    location: SourceLocation


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    location = SourceLocation(1, 1)
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(
                f"unexpected character {text[position]!r}", location, "pg-schema"
            )
        kind = match.lastgroup or ""
        value = match.group()
        if kind not in ("ws", "comment"):
            token_kind = kind if kind != "punct" else value
            if kind == "arrow":
                token_kind = "->"
            tokens.append(_Token(token_kind, value, location))
        location = location.advanced(value)
        position = match.end()
    tokens.append(_Token("eof", "", location))
    return tokens


class _Parser:
    """Recursive descent parser over the PG-Schema token stream."""

    def __init__(self, tokens: List[_Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token utilities -------------------------------------------------

    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        if token.kind != "eof":
            self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind!r} but found {token.text or 'end of input'!r}",
                token.location,
                "pg-schema",
            )
        return self._advance()

    def _expect_word(self, value: Optional[str] = None) -> _Token:
        token = self._expect("word")
        if value is not None and token.text.upper() != value.upper():
            raise ParseError(
                f"expected keyword {value!r} but found {token.text!r}",
                token.location,
                "pg-schema",
            )
        return token

    def _at(self, kind: str) -> bool:
        return self._peek().kind == kind

    # -- grammar ---------------------------------------------------------

    def parse(self) -> PGSchema:
        self._expect_word("CREATE")
        self._expect_word("GRAPH")
        # An optional graph name is accepted for convenience.
        if self._at("word"):
            self._advance()
        self._expect("{")
        node_types: List[NodeType] = []
        edge_types: List[Tuple[str, str, str, str, Tuple[PropertyDef, ...]]] = []
        while not self._at("}"):
            element = self._parse_element()
            if isinstance(element, NodeType):
                node_types.append(element)
            else:
                edge_types.append(element)
            if self._at(","):
                self._advance()
        self._expect("}")
        self._expect("eof")
        resolved_edges = [
            EdgeType(
                type_name=type_name,
                label=label,
                source=self._resolve_endpoint(source, node_types),
                target=self._resolve_endpoint(target, node_types),
                properties=properties,
            )
            for type_name, label, source, target, properties in edge_types
        ]
        return PGSchema(node_types=node_types, edge_types=resolved_edges)

    @staticmethod
    def _resolve_endpoint(name: str, node_types: List[NodeType]) -> str:
        for node_type in node_types:
            if node_type.type_name == name or node_type.label == name:
                return node_type.label
        # Leave unresolved; PGSchema validation reports the error with context.
        return name

    def _parse_element(self):
        start = self._expect("(")
        if self._at(":"):
            # "(:personType)" opener means this is an edge declaration.
            return self._parse_edge(start)
        return self._parse_node()

    def _parse_node(self) -> NodeType:
        type_name = self._expect("word").text
        self._expect(":")
        label = self._expect("word").text
        properties: Tuple[PropertyDef, ...] = ()
        if self._at("{"):
            properties = self._parse_properties()
        self._expect(")")
        return NodeType(type_name=type_name, label=label, properties=properties)

    def _parse_edge(self, start: _Token):
        self._expect(":")
        source = self._expect("word").text
        self._expect(")")
        self._expect("-")
        self._expect("[")
        type_name = self._expect("word").text
        self._expect(":")
        label = self._expect("word").text
        properties: Tuple[PropertyDef, ...] = ()
        if self._at("{"):
            properties = self._parse_properties()
        self._expect("]")
        self._expect("->")
        self._expect("(")
        self._expect(":")
        target = self._expect("word").text
        self._expect(")")
        del start
        return (type_name, label, source, target, properties)

    def _parse_properties(self) -> Tuple[PropertyDef, ...]:
        self._expect("{")
        properties: List[PropertyDef] = []
        while not self._at("}"):
            name = self._expect("word").text
            type_token = self._expect("word")
            properties.append(
                PropertyDef(name, PropertyType.from_name(type_token.text))
            )
            if self._at(","):
                self._advance()
        self._expect("}")
        return tuple(properties)


def parse_pg_schema(text: str) -> PGSchema:
    """Parse PG-Schema text (the ``CREATE GRAPH`` form) into a :class:`PGSchema`."""
    return _Parser(_tokenize(text)).parse()
