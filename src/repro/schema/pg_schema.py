"""Property-graph schema (PG-Schema) model.

The model follows the fragment of PG-Schema used in the paper's Figure 2: a
graph type is a collection of *node types* and *edge types*, each carrying a
label and a set of typed properties.  Every node type is assumed to expose an
``id`` property that acts as its key, which is how the LDBC SNB schema (and
the paper's translation to DL-Schema) identifies nodes.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.errors import SchemaError


def normalize_edge_label(label: str) -> str:
    """Normalise an edge label for matching.

    PG-Schema declarations tend to use camelCase labels (``isLocatedIn``)
    while Cypher queries use upper-snake-case (``IS_LOCATED_IN``); both
    normalise to ``IS_LOCATED_IN`` so that lookups succeed either way.
    """
    if label.isupper() or "_" in label:
        return label.upper()
    pieces = re.findall(r"[A-Z]?[a-z0-9]+|[A-Z]+(?![a-z])", label)
    return "_".join(piece.upper() for piece in pieces)


class PropertyType(enum.Enum):
    """Primitive property types supported by PG-Schema."""

    INT = "INT"
    STRING = "STRING"
    FLOAT = "FLOAT"
    BOOL = "BOOL"
    DATE = "DATE"

    @classmethod
    def from_name(cls, name: str) -> "PropertyType":
        """Parse a type name as written in PG-Schema text (case-insensitive)."""
        normalized = name.strip().upper()
        aliases = {
            "INTEGER": "INT",
            "LONG": "INT",
            "BIGINT": "INT",
            "TEXT": "STRING",
            "VARCHAR": "STRING",
            "DOUBLE": "FLOAT",
            "REAL": "FLOAT",
            "BOOLEAN": "BOOL",
            "DATETIME": "DATE",
            "TIMESTAMP": "DATE",
        }
        normalized = aliases.get(normalized, normalized)
        try:
            return cls(normalized)
        except ValueError as exc:
            raise SchemaError(f"unknown property type {name!r}") from exc


@dataclass(frozen=True)
class PropertyDef:
    """A single typed property of a node or edge type."""

    name: str
    type: PropertyType

    def __str__(self) -> str:
        return f"{self.name} {self.type.value}"


@dataclass(frozen=True)
class NodeType:
    """A node type: a type name, a label and an ordered list of properties."""

    type_name: str
    label: str
    properties: Tuple[PropertyDef, ...] = ()

    def property_names(self) -> List[str]:
        """Return property names in declaration order."""
        return [prop.name for prop in self.properties]

    def property_type(self, name: str) -> PropertyType:
        """Return the type of property ``name`` or raise :class:`SchemaError`."""
        for prop in self.properties:
            if prop.name == name:
                return prop.type
        raise SchemaError(f"node type {self.label!r} has no property {name!r}")

    def has_property(self, name: str) -> bool:
        """Return whether the node type declares property ``name``."""
        return any(prop.name == name for prop in self.properties)


@dataclass(frozen=True)
class EdgeType:
    """An edge type connecting a source node type to a target node type."""

    type_name: str
    label: str
    source: str
    target: str
    properties: Tuple[PropertyDef, ...] = ()

    def property_names(self) -> List[str]:
        """Return property names in declaration order."""
        return [prop.name for prop in self.properties]

    def property_type(self, name: str) -> PropertyType:
        """Return the type of property ``name`` or raise :class:`SchemaError`."""
        for prop in self.properties:
            if prop.name == name:
                return prop.type
        raise SchemaError(f"edge type {self.label!r} has no property {name!r}")

    def has_property(self, name: str) -> bool:
        """Return whether the edge type declares property ``name``."""
        return any(prop.name == name for prop in self.properties)


@dataclass
class PGSchema:
    """A property-graph schema: node types plus edge types.

    Node labels must be unique.  Edge labels may be shared by several edge
    types (the same relationship label between different endpoint types),
    which is why :meth:`edge_types_by_label` returns a list.
    """

    node_types: List[NodeType] = field(default_factory=list)
    edge_types: List[EdgeType] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._validate()

    def _validate(self) -> None:
        seen_labels: Dict[str, NodeType] = {}
        for node_type in self.node_types:
            if node_type.label in seen_labels:
                raise SchemaError(f"duplicate node label {node_type.label!r}")
            seen_labels[node_type.label] = node_type
        node_labels = {node_type.label for node_type in self.node_types}
        type_to_label = {nt.type_name: nt.label for nt in self.node_types}
        for edge_type in self.edge_types:
            for endpoint in (edge_type.source, edge_type.target):
                if endpoint not in node_labels and endpoint not in type_to_label:
                    raise SchemaError(
                        f"edge type {edge_type.label!r} references unknown "
                        f"node type {endpoint!r}"
                    )

    # -- lookups ---------------------------------------------------------

    def node_type(self, label: str) -> NodeType:
        """Return the node type with ``label`` or raise :class:`SchemaError`."""
        for node_type in self.node_types:
            if node_type.label == label:
                return node_type
        raise SchemaError(f"unknown node label {label!r}")

    def has_node_label(self, label: str) -> bool:
        """Return whether a node type with ``label`` exists."""
        return any(node_type.label == label for node_type in self.node_types)

    def node_labels(self) -> List[str]:
        """Return all node labels in declaration order."""
        return [node_type.label for node_type in self.node_types]

    def edge_labels(self) -> List[str]:
        """Return all edge labels in declaration order (may contain duplicates)."""
        return [edge_type.label for edge_type in self.edge_types]

    def edge_types_by_label(self, label: str) -> List[EdgeType]:
        """Return every edge type carrying ``label``.

        Labels are compared after upper-snake-case normalisation so that
        schema declarations (``isLocatedIn``) match query syntax
        (``IS_LOCATED_IN``).
        """
        wanted = normalize_edge_label(label)
        return [
            edge_type
            for edge_type in self.edge_types
            if normalize_edge_label(edge_type.label) == wanted
        ]

    def resolve_node_label(self, name: str) -> str:
        """Resolve ``name`` (a label or a type name) to a node label."""
        for node_type in self.node_types:
            if node_type.label == name or node_type.type_name == name:
                return node_type.label
        raise SchemaError(f"unknown node type or label {name!r}")

    def edge_type_between(
        self,
        label: str,
        source_label: Optional[str] = None,
        target_label: Optional[str] = None,
    ) -> EdgeType:
        """Return the unique edge type with ``label`` between the given endpoints.

        ``source_label`` / ``target_label`` restrict the candidates when the
        same edge label connects several node-type pairs; either may be
        ``None`` to mean "any".
        """
        candidates = []
        for edge_type in self.edge_types_by_label(label):
            source = self.resolve_node_label(edge_type.source)
            target = self.resolve_node_label(edge_type.target)
            if source_label is not None and source != source_label:
                continue
            if target_label is not None and target != target_label:
                continue
            candidates.append(edge_type)
        if not candidates:
            raise SchemaError(
                f"no edge type {label!r} between {source_label!r} and {target_label!r}"
            )
        if len(candidates) > 1:
            raise SchemaError(
                f"ambiguous edge type {label!r} between {source_label!r} "
                f"and {target_label!r}"
            )
        return candidates[0]

    # -- construction helpers -------------------------------------------

    @staticmethod
    def build(
        nodes: Iterable[Tuple[str, List[Tuple[str, str]]]],
        edges: Iterable[Tuple[str, str, str, List[Tuple[str, str]]]],
    ) -> "PGSchema":
        """Build a schema from plain tuples, mainly for tests and examples.

        ``nodes`` is an iterable of ``(label, [(prop, type_name), ...])`` and
        ``edges`` of ``(label, source_label, target_label, props)``.
        """
        node_types = [
            NodeType(
                type_name=f"{label[0].lower()}{label[1:]}Type",
                label=label,
                properties=tuple(
                    PropertyDef(name, PropertyType.from_name(type_name))
                    for name, type_name in props
                ),
            )
            for label, props in nodes
        ]
        edge_types = [
            EdgeType(
                type_name=f"{label[0].lower()}{label[1:]}Type",
                label=label,
                source=source,
                target=target,
                properties=tuple(
                    PropertyDef(name, PropertyType.from_name(type_name))
                    for name, type_name in props
                ),
            )
            for label, source, target, props in edges
        ]
        return PGSchema(node_types=node_types, edge_types=edge_types)
