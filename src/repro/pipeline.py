"""The Raqlet compiler facade: one object driving the whole pipeline.

:class:`Raqlet` wraps the full translation chain of the paper's Figure 1:

* Cypher text  ->  PGIR  ->  DLIR  ->  {Soufflé Datalog text, SQIR, SQL text}
* Datalog text ->  DLIR  ->  {Soufflé Datalog text, SQIR, SQL text}

plus the static analyses (Section 4), the optimizer (Section 5), and helpers
to execute a compiled query on each of the four execution engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.analysis import AnalysisReport, analyze_program
from repro.analysis.report import BACKEND_CAPABILITIES, check_backend_support
from repro.backends import dlir_to_souffle, pgir_to_cypher, sqir_to_sql
from repro.common.errors import RaqletError, UnsupportedFeatureError
from repro.dlir import DLIRProgram, program_param_names, translate_pgir_to_dlir
from repro.engines.datalog import DatalogEngine
from repro.engines.graph import GraphEngine, PropertyGraph
from repro.engines.relational import Database, RelationalEngine
from repro.engines.result import QueryResult
from repro.engines.sqlite_exec import SQLiteExecutor
from repro.frontend.cypher import parse_cypher
from repro.frontend.datalog import parse_datalog
from repro.optimize import OptimizationTrace, optimize_program
from repro.pgir import LoweringResult, lower_cypher_to_pgir, pgir_to_text
from repro.schema import PGSchema, SchemaMapping, parse_pg_schema, pg_to_dl_schema
from repro.sqir import SQIRQuery, translate_dlir_to_sqir

FactsInput = Mapping[str, Iterable[Tuple]]


@dataclass
class CompiledQuery:
    """Everything Raqlet produces for one input query.

    The artifacts mirror the paper's Figure 3: the PGIR form, the DLIR form
    (unoptimized and optimized), the generated Soufflé Datalog text and the
    generated SQL text, plus the static analysis report.
    """

    source_language: str
    source_text: str
    parameters: Dict[str, object] = field(default_factory=dict)
    lowering: Optional[LoweringResult] = None
    dlir: Optional[DLIRProgram] = None
    dlir_optimized: Optional[DLIRProgram] = None
    optimization_trace: Optional[OptimizationTrace] = None
    analysis: Optional[AnalysisReport] = None

    # -- artifact accessors ------------------------------------------------

    def program(self, optimized: bool = True) -> DLIRProgram:
        """Return the optimized (default) or unoptimized DLIR program."""
        program = self.dlir_optimized if optimized else self.dlir
        if program is None:
            raise RaqletError("query was not compiled to DLIR")
        return program

    def pgir_text(self) -> str:
        """Return the PGIR rendering (only for Cypher inputs)."""
        if self.lowering is None:
            raise RaqletError("no PGIR available for this input language")
        return pgir_to_text(self.lowering.query)

    def cypher_text(self) -> str:
        """Return normalised Cypher regenerated from PGIR."""
        if self.lowering is None:
            raise RaqletError("no PGIR available for this input language")
        return pgir_to_cypher(self.lowering.query)

    def datalog_text(self, optimized: bool = True) -> str:
        """Return Soufflé Datalog text for the chosen program variant."""
        return dlir_to_souffle(self.program(optimized))

    def sqir(self, optimized: bool = True) -> SQIRQuery:
        """Return the SQIR plan for the chosen program variant."""
        return translate_dlir_to_sqir(self.program(optimized))

    def sql_text(self, optimized: bool = True, dialect: str = "ansi") -> str:
        """Return SQL text for the chosen program variant."""
        return sqir_to_sql(self.sqir(optimized), dialect=dialect)

    def param_names(self, optimized: bool = True) -> List[str]:
        """Return the names of the query's late-bound ``$name`` parameters.

        These are the parameters *not* inlined at compile time; each
        execution must supply a value for every one of them (see
        :meth:`repro.session.PreparedQuery.run`).
        """
        return program_param_names(self.program(optimized))

    def backend_problems(self, backend: str) -> List[str]:
        """Return the reasons ``backend`` cannot run this query (empty = ok)."""
        if self.analysis is None:
            raise RaqletError("query was not analysed")
        capability = BACKEND_CAPABILITIES.get(backend)
        if capability is None:
            raise RaqletError(f"unknown backend {backend!r}")
        return check_backend_support(self.analysis, capability)

    def warnings(self) -> List[str]:
        """Return normalisation and analysis warnings."""
        warnings: List[str] = []
        if self.lowering is not None:
            warnings.extend(self.lowering.query.warnings)
        if self.analysis is not None:
            warnings.extend(self.analysis.warnings)
        return warnings


class Raqlet:
    """The compiler facade.

    Parameters
    ----------
    schema:
        Either a :class:`PGSchema`, PG-Schema text (``CREATE GRAPH ...``), or
        an existing :class:`SchemaMapping`.
    """

    def __init__(self, schema) -> None:
        if isinstance(schema, SchemaMapping):
            self._mapping = schema
        elif isinstance(schema, PGSchema):
            self._mapping = pg_to_dl_schema(schema)
        elif isinstance(schema, str):
            self._mapping = pg_to_dl_schema(parse_pg_schema(schema))
        else:
            raise RaqletError(f"unsupported schema input {type(schema).__name__}")

    # -- properties ----------------------------------------------------------

    @property
    def mapping(self) -> SchemaMapping:
        """Return the PG-Schema to DL-Schema mapping."""
        return self._mapping

    @property
    def dl_schema(self):
        """Return the derived DL-Schema."""
        return self._mapping.dl_schema

    # -- compilation ----------------------------------------------------------

    def compile_cypher(
        self,
        query: str,
        parameters: Optional[Mapping[str, object]] = None,
        optimize: bool = True,
    ) -> CompiledQuery:
        """Compile a Cypher query through PGIR into DLIR (and optimize it)."""
        ast = parse_cypher(query)
        lowering = lower_cypher_to_pgir(ast, parameters)
        dlir = translate_pgir_to_dlir(lowering, self._mapping)
        compiled = CompiledQuery(
            source_language="cypher",
            source_text=query,
            parameters=dict(parameters or {}),
            lowering=lowering,
            dlir=dlir,
        )
        self._finish(compiled, optimize)
        return compiled

    def compile_datalog(self, program_text: str, optimize: bool = True) -> CompiledQuery:
        """Compile Soufflé-dialect Datalog text into DLIR (and optimize it).

        EDB relations that are declared in the program but also exist in the
        schema mapping keep the program's declaration; undeclared schema EDBs
        are added so the program can reference the graph relations directly.
        """
        program = parse_datalog(program_text, schema=self._mapping.dl_schema)
        compiled = CompiledQuery(
            source_language="datalog", source_text=program_text, dlir=program
        )
        self._finish(compiled, optimize)
        return compiled

    def compile_sql(self, sql_text: str, optimize: bool = True) -> CompiledQuery:
        """Compile recursive SQL text through SQIR into DLIR (and optimize it).

        Base tables referenced by the query are resolved against the schema
        mapping's DL-Schema (node and edge relations).
        """
        from repro.frontend.sql import parse_sql
        from repro.sqir.to_dlir import translate_sqir_to_dlir

        sqir = parse_sql(sql_text)
        program = translate_sqir_to_dlir(sqir, self._mapping.dl_schema)
        compiled = CompiledQuery(
            source_language="sql", source_text=sql_text, dlir=program
        )
        self._finish(compiled, optimize)
        return compiled

    def compile_dlir(self, program: DLIRProgram, optimize: bool = True) -> CompiledQuery:
        """Wrap an already-built DLIR program (analysis + optimization only)."""
        compiled = CompiledQuery(
            source_language="dlir", source_text=str(program), dlir=program
        )
        self._finish(compiled, optimize)
        return compiled

    def _finish(self, compiled: CompiledQuery, optimize: bool) -> None:
        assert compiled.dlir is not None
        compiled.analysis = analyze_program(compiled.dlir)
        if optimize:
            optimized, trace = optimize_program(compiled.dlir, self._mapping)
            compiled.dlir_optimized = optimized
            compiled.optimization_trace = trace
        else:
            compiled.dlir_optimized = compiled.dlir

    # -- sessions -------------------------------------------------------------

    def session(
        self,
        facts: Optional[FactsInput] = None,
        *,
        store=None,
        executor=None,
        **engine_options,
    ):
        """Open a persistent :class:`~repro.session.Session` over ``facts``.

        The session owns one fact store (EDB ingest, indexes and statistics
        are paid once), compiles queries with late-bound ``$name``
        parameters through :meth:`~repro.session.Session.prepare`, routes
        :meth:`~repro.session.Session.execute` across engines, and supports
        :meth:`~repro.session.Session.insert` /
        :meth:`~repro.session.Session.retract` mutations with lazy
        re-derivation.  ``store`` / ``executor`` / ``engine_options`` are
        resolved exactly like the one-shot API (``None`` honours
        ``REPRO_STORE`` / ``REPRO_EXECUTOR``).
        """
        from repro.session import Session

        return Session(
            self, facts, store=store, executor=executor, **engine_options
        )

    # -- execution ------------------------------------------------------------

    def datalog_engine(
        self,
        compiled: CompiledQuery,
        facts: FactsInput,
        optimized: bool = True,
        *,
        store=None,
        executor=None,
        parameters: Optional[Mapping[str, object]] = None,
        **engine_options,
    ) -> DatalogEngine:
        """Build (without running) a Datalog engine for the compiled query.

        Callers that need more than the result rows — the plan report
        (``engine.explain()``, the CLI's ``--explain``), re-plan counters,
        iteration counts — hold the engine; plain execution goes through
        :meth:`run_on_datalog_engine`.  ``parameters`` binds late-bound
        ``$name`` placeholders (merged over the compile-time values).
        Store and executor selection routes through
        :func:`repro.session.resolve_execution_options`, the single place
        where ``None`` falls back to ``REPRO_STORE`` / ``REPRO_EXECUTOR``.
        """
        from repro.session import resolve_execution_options

        resolved_store, resolved_executor = resolve_execution_options(
            store,
            executor,
            maintain_indexes=engine_options.get("incremental_indexes", True),
        )
        return DatalogEngine(
            compiled.program(optimized),
            facts,
            store=resolved_store,
            executor=resolved_executor,
            parameters={**compiled.parameters, **(parameters or {})},
            **engine_options,
        )

    def run_on_datalog_engine(
        self,
        compiled: CompiledQuery,
        facts: FactsInput,
        optimized: bool = True,
        *,
        store=None,
        executor=None,
        parameters: Optional[Mapping[str, object]] = None,
        **engine_options,
    ) -> QueryResult:
        """Execute the compiled query on the in-repo Datalog engine.

        A thin wrapper over a **throwaway session**: the call builds a
        :class:`~repro.session.Session`, prepares the compiled query, runs
        it once with the query's compile-time parameters, and closes the
        session.  Long-running callers should hold a session themselves
        (:meth:`session`) so the EDB ingest, indexes, statistics and
        compiled plans amortise across requests.

        ``engine_options`` are forwarded to :class:`DatalogEngine` — e.g.
        ``replan_threshold`` to tune (or disable) statistics-driven
        re-planning, or ``incremental_indexes`` / ``reuse_plans`` to
        benchmark the seed evaluation strategy; ``store`` / ``executor``
        select the backend exactly as in :meth:`session`.
        """
        from repro.session import Session

        session = Session(
            self, facts, store=store, executor=executor, **engine_options
        )
        try:
            return session.prepare(compiled, optimized=optimized).run(
                parameters or {}
            )
        finally:
            session.close()

    def run_on_relational_engine(
        self,
        compiled: CompiledQuery,
        database: Database,
        optimized: bool = True,
        parameters: Optional[Mapping[str, object]] = None,
    ) -> QueryResult:
        """Execute the generated SQIR on the in-repo relational engine.

        ``parameters`` binds any late-bound ``$name`` placeholders before
        translation (the relational engine has no runtime binding).
        """
        problems = compiled.backend_problems("relational-engine")
        if problems:
            raise UnsupportedFeatureError("; ".join(problems), backend="relational-engine")
        program = compiled.program(optimized)
        values = {**compiled.parameters, **(parameters or {})}
        if program_param_names(program):
            from repro.dlir import bind_parameters

            program = bind_parameters(program, values)
        return RelationalEngine(database).execute(translate_dlir_to_sqir(program))

    def run_on_sqlite(
        self,
        compiled: CompiledQuery,
        executor: SQLiteExecutor,
        optimized: bool = True,
        parameters: Optional[Mapping[str, object]] = None,
    ) -> QueryResult:
        """Execute the generated SQL text on SQLite.

        Late-bound parameters are emitted as named ``:name`` placeholders
        and bound by SQLite itself, so the SQL text is reusable per binding.
        """
        problems = compiled.backend_problems("sqlite")
        if problems:
            raise UnsupportedFeatureError("; ".join(problems), backend="sqlite")
        values = {**compiled.parameters, **(parameters or {})}
        return executor.execute_sql(
            compiled.sql_text(optimized, dialect="sqlite"), values
        )

    def run_on_graph_engine(
        self,
        compiled: CompiledQuery,
        graph: PropertyGraph,
        parameters: Optional[Mapping[str, object]] = None,
    ) -> QueryResult:
        """Execute the original (PGIR) query on the property-graph engine.

        The graph interpreter evaluates PGIR directly, so late-bound
        parameters are inlined by re-lowering the source with ``parameters``
        merged over the compile-time values.
        """
        if compiled.lowering is None:
            raise RaqletError("graph execution requires a Cypher input query")
        lowering = compiled.lowering
        if compiled.param_names():
            values = {**compiled.parameters, **(parameters or {})}
            ast = parse_cypher(compiled.source_text)
            lowering = lower_cypher_to_pgir(ast, values)
        return GraphEngine(graph).execute(lowering)

    def run_everywhere(
        self,
        compiled: CompiledQuery,
        facts: FactsInput,
        database: Optional[Database] = None,
        graph: Optional[PropertyGraph] = None,
        sqlite_executor: Optional[SQLiteExecutor] = None,
        optimized: bool = True,
        datalog_store: Optional[str] = None,
        datalog_executor: Optional[str] = None,
        parameters: Optional[Mapping[str, object]] = None,
    ) -> Dict[str, QueryResult]:
        """Run the query on every engine it supports and collect the results.

        Engines whose capability check rejects the query are skipped.
        ``datalog_store`` selects the Datalog engine's fact-store backend
        (``"memory"``, ``"sqlite"``, ``"sqlite:PATH"``) and
        ``datalog_executor`` its plan executor (``"interpreted"``,
        ``"compiled"``); both route through
        :func:`repro.session.resolve_execution_options` — the single place
        where ``None`` falls back to ``REPRO_STORE`` / ``REPRO_EXECUTOR``,
        so forwarding an unset option never shadows the environment.
        ``parameters`` binds any late-bound ``$name`` placeholders on every
        engine.
        """
        results: Dict[str, QueryResult] = {}
        results["datalog"] = self.run_on_datalog_engine(
            compiled,
            facts,
            optimized,
            store=datalog_store,
            executor=datalog_executor,
            parameters=parameters,
        )
        if database is not None and not compiled.backend_problems("relational-engine"):
            results["relational"] = self.run_on_relational_engine(
                compiled, database, optimized, parameters
            )
        if sqlite_executor is not None and not compiled.backend_problems("sqlite"):
            results["sqlite"] = self.run_on_sqlite(
                compiled, sqlite_executor, optimized, parameters
            )
        if graph is not None and compiled.lowering is not None:
            results["graph"] = self.run_on_graph_engine(compiled, graph, parameters)
        return results
