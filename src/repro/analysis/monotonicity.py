"""Monotonicity analysis (paper Section 4).

A recursive query is monotonic under set inclusion when adding facts can only
add (never remove) derived facts.  Negation and non-monotone aggregation
inside a recursive component break monotonicity and can prevent the fixpoint
from converging; min/max-subsumption recursion (the Datalog^o style used for
shortest paths) is treated as monotone over the lattice it defines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.dependencies import DependencyGraph, build_dependency_graph
from repro.dlir.core import DLIRProgram


@dataclass
class MonotonicityResult:
    """Outcome of monotonicity analysis.

    ``is_monotonic`` refers to the whole program: every recursive component is
    free of negation/aggregation edges.  ``non_monotonic_reasons`` explains
    failures; ``lattice_monotone_rules`` counts subsumption (min/max) rules
    that are monotone over their ordering lattice rather than plain sets.
    """

    is_monotonic: bool
    non_monotonic_reasons: List[str] = field(default_factory=list)
    lattice_monotone_rules: int = 0
    uses_negation: bool = False
    uses_aggregation: bool = False


def analyze_monotonicity(
    program: DLIRProgram, dependency_graph: Optional[DependencyGraph] = None
) -> MonotonicityResult:
    """Determine whether the program is monotonic under set inclusion."""
    graph = dependency_graph or build_dependency_graph(program)
    reasons: List[str] = []
    uses_negation = any(rule.has_negation() for rule in program.rules)
    uses_aggregation = any(rule.has_aggregation() for rule in program.rules)
    lattice_rules = sum(
        1
        for rule in program.rules
        if rule.subsume_min is not None or rule.subsume_max is not None
    )
    for rule in program.rules:
        component = graph.scc_of.get(rule.head.relation)
        if component is None:
            continue
        recursive = len(component) > 1 or graph.graph.has_edge(
            rule.head.relation, rule.head.relation
        )
        if not recursive:
            continue
        for negated in rule.negated_atoms():
            if negated.atom.relation in component:
                reasons.append(
                    f"rule for {rule.head.relation!r} negates {negated.atom.relation!r} "
                    "inside its own recursive component"
                )
        if rule.has_aggregation():
            recursive_atoms = [
                atom for atom in rule.body_atoms() if atom.relation in component
            ]
            if recursive_atoms:
                reasons.append(
                    f"rule for {rule.head.relation!r} aggregates over its own "
                    "recursive component"
                )
    return MonotonicityResult(
        is_monotonic=not reasons,
        non_monotonic_reasons=reasons,
        lattice_monotone_rules=lattice_rules,
        uses_negation=uses_negation,
        uses_aggregation=uses_aggregation,
    )
