"""Predicate dependency graph of a DLIR program.

The dependency graph has one node per relation; a rule ``H :- ..., B, ...``
adds an edge ``B -> H``.  Edges are annotated with whether the dependency
passes through negation or aggregation, which stratification uses, and the
strongly connected components of the graph identify recursive relation
groups, which the recursion analyses and the evaluation engine use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

import networkx as nx

from repro.dlir.core import DLIRProgram, Rule


@dataclass(frozen=True)
class DependencyEdge:
    """A dependency from ``source`` (body relation) to ``target`` (head)."""

    source: str
    target: str
    negated: bool = False
    through_aggregation: bool = False


@dataclass
class DependencyGraph:
    """The predicate dependency graph plus its SCC decomposition."""

    graph: nx.DiGraph
    edges: List[DependencyEdge] = field(default_factory=list)
    sccs: List[FrozenSet[str]] = field(default_factory=list)
    scc_of: Dict[str, FrozenSet[str]] = field(default_factory=dict)

    def depends_on(self, relation: str) -> Set[str]:
        """Return the relations that ``relation`` (directly) depends on."""
        if relation not in self.graph:
            return set()
        return set(self.graph.predecessors(relation))

    def dependents_of(self, relation: str) -> Set[str]:
        """Return the relations that (directly) depend on ``relation``."""
        if relation not in self.graph:
            return set()
        return set(self.graph.successors(relation))

    def is_recursive(self, relation: str) -> bool:
        """Return whether ``relation`` participates in a dependency cycle."""
        component = self.scc_of.get(relation, frozenset())
        if len(component) > 1:
            return True
        return self.graph.has_edge(relation, relation)

    def recursive_components(self) -> List[FrozenSet[str]]:
        """Return the SCCs that contain recursion (size > 1 or a self-loop)."""
        result = []
        for component in self.sccs:
            if len(component) > 1:
                result.append(component)
            else:
                (relation,) = tuple(component)
                if self.graph.has_edge(relation, relation):
                    result.append(component)
        return result

    def same_component(self, first: str, second: str) -> bool:
        """Return whether two relations belong to the same SCC."""
        return self.scc_of.get(first) is not None and self.scc_of.get(first) == self.scc_of.get(second)

    def condensation_order(self) -> List[FrozenSet[str]]:
        """Return the SCCs in a topological (evaluation) order."""
        condensed = nx.condensation(self.graph, scc=[set(c) for c in self.sccs])
        order = list(nx.topological_sort(condensed))
        return [frozenset(condensed.nodes[index]["members"]) for index in order]


def _rule_dependencies(rule: Rule) -> List[Tuple[str, bool, bool]]:
    """Return ``(body relation, negated, through aggregation)`` triples."""
    through_aggregation = rule.has_aggregation()
    dependencies = []
    for atom in rule.body_atoms():
        dependencies.append((atom.relation, False, through_aggregation))
    for negated in rule.negated_atoms():
        dependencies.append((negated.atom.relation, True, through_aggregation))
    return dependencies


def build_dependency_graph(program: DLIRProgram) -> DependencyGraph:
    """Build the dependency graph of ``program``."""
    graph = nx.DiGraph()
    for name in program.relation_names():
        graph.add_node(name)
    edges: List[DependencyEdge] = []
    for rule in program.rules:
        head = rule.head.relation
        for source, negated, through_aggregation in _rule_dependencies(rule):
            edge = DependencyEdge(
                source=source,
                target=head,
                negated=negated,
                through_aggregation=through_aggregation,
            )
            edges.append(edge)
            if graph.has_edge(source, head):
                graph[source][head]["negated"] = graph[source][head]["negated"] or negated
                graph[source][head]["aggregated"] = (
                    graph[source][head]["aggregated"] or through_aggregation
                )
            else:
                graph.add_edge(
                    source, head, negated=negated, aggregated=through_aggregation
                )
    sccs = [frozenset(component) for component in nx.strongly_connected_components(graph)]
    scc_of: Dict[str, FrozenSet[str]] = {}
    for component in sccs:
        for relation in component:
            scc_of[relation] = component
    return DependencyGraph(graph=graph, edges=edges, sccs=sccs, scc_of=scc_of)
