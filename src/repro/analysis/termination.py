"""Termination analysis (paper Section 4).

Datalog over a finite EDB always terminates *unless* rules can manufacture an
unbounded supply of new values.  The analysis flags the standard culprits:

* arithmetic (interpreted functions) in the head of a recursive rule whose
  result feeds back into the recursion (e.g. ``Dist(a, b, d+1) :- Dist(...)``),
  unless the rule carries a min/max subsumption marker that bounds the values,
* comparisons are *not* flagged (they only filter),
* bag semantics is not representable in DLIR (set semantics only), so the
  corresponding warning from the paper does not arise here.

The result is a warning list, not a hard error: the paper positions this
analysis as user guidance ("your query may not terminate over cyclic data").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.dependencies import DependencyGraph, build_dependency_graph
from repro.dlir.core import ArithExpr, DLIRProgram, Rule, term_variables


@dataclass
class TerminationResult:
    """Outcome of termination analysis."""

    may_not_terminate: bool
    warnings: List[str] = field(default_factory=list)


def _head_arithmetic_feeding_recursion(rule: Rule, component) -> bool:
    """Return whether the rule grows values through head arithmetic."""
    has_recursive_body = any(
        atom.relation in component for atom in rule.body_atoms()
    )
    if not has_recursive_body:
        return False
    for term in rule.head.terms:
        if isinstance(term, ArithExpr):
            # Arithmetic over a variable bound by a recursive atom can grow
            # without bound unless subsumption keeps only the best value.
            arithmetic_vars = set(term_variables(term))
            for atom in rule.body_atoms():
                if atom.relation in component and arithmetic_vars & set(atom.variables()):
                    return True
    return False


def analyze_termination(
    program: DLIRProgram, dependency_graph: Optional[DependencyGraph] = None
) -> TerminationResult:
    """Detect recursion patterns that may not terminate."""
    graph = dependency_graph or build_dependency_graph(program)
    warnings: List[str] = []
    for rule in program.rules:
        component = graph.scc_of.get(rule.head.relation)
        if component is None:
            continue
        recursive = len(component) > 1 or graph.graph.has_edge(
            rule.head.relation, rule.head.relation
        )
        if not recursive:
            continue
        if _head_arithmetic_feeding_recursion(rule, component):
            if rule.subsume_min is not None or rule.subsume_max is not None:
                continue  # bounded by subsumption (Datalog^o-style min/max)
            warnings.append(
                f"rule for {rule.head.relation!r} applies arithmetic to a value "
                "derived recursively; over cyclic data this recursion may not "
                "terminate"
            )
    return TerminationResult(may_not_terminate=bool(warnings), warnings=warnings)
