"""Linearity and mutual-recursion analysis (paper Section 4).

*Linearity*: a recursive rule is linear when its body contains at most one
atom from the head's recursive component.  Programs whose recursive rules are
all linear can be executed as SQL recursive CTEs; non-linear programs cannot
(without rewriting).

*Mutual recursion*: two or more distinct relations that depend on each other
in a cycle.  RDBMS backends reject it; Datalog engines support it natively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

from repro.analysis.dependencies import DependencyGraph, build_dependency_graph
from repro.dlir.core import DLIRProgram, Rule


def recursive_relations(
    program: DLIRProgram, dependency_graph: Optional[DependencyGraph] = None
) -> Set[str]:
    """Return the set of relations that participate in recursion."""
    graph = dependency_graph or build_dependency_graph(program)
    recursive: Set[str] = set()
    for component in graph.recursive_components():
        recursive.update(component)
    return recursive


def recursive_body_count(rule: Rule, component: FrozenSet[str]) -> int:
    """Return how many positive body atoms of ``rule`` are in ``component``."""
    return sum(1 for atom in rule.body_atoms() if atom.relation in component)


@dataclass
class LinearityResult:
    """Outcome of linearity analysis.

    ``is_linear`` is true when every recursive rule has at most one recursive
    body atom.  ``non_linear_rules`` lists offending rules (as strings) and
    ``recursive_rule_count`` counts rules involved in recursion at all.
    """

    is_linear: bool
    has_recursion: bool
    recursive_rule_count: int = 0
    non_linear_rules: List[str] = field(default_factory=list)
    linear_rules: List[str] = field(default_factory=list)


def analyze_linearity(
    program: DLIRProgram, dependency_graph: Optional[DependencyGraph] = None
) -> LinearityResult:
    """Classify the program's recursion as linear or non-linear."""
    graph = dependency_graph or build_dependency_graph(program)
    recursive_rule_count = 0
    non_linear: List[str] = []
    linear: List[str] = []
    has_recursion = bool(graph.recursive_components())
    for rule in program.rules:
        component = graph.scc_of.get(rule.head.relation)
        if component is None:
            continue
        is_recursive_component = len(component) > 1 or graph.graph.has_edge(
            rule.head.relation, rule.head.relation
        )
        if not is_recursive_component:
            continue
        count = recursive_body_count(rule, component)
        if count == 0:
            continue
        recursive_rule_count += 1
        if count > 1:
            non_linear.append(str(rule))
        else:
            linear.append(str(rule))
    return LinearityResult(
        is_linear=not non_linear,
        has_recursion=has_recursion,
        recursive_rule_count=recursive_rule_count,
        non_linear_rules=non_linear,
        linear_rules=linear,
    )


@dataclass
class MutualRecursionResult:
    """Outcome of mutual-recursion analysis.

    ``groups`` lists the SCCs containing two or more distinct relations.
    """

    has_mutual_recursion: bool
    groups: List[FrozenSet[str]] = field(default_factory=list)
    self_recursive: List[str] = field(default_factory=list)


def analyze_mutual_recursion(
    program: DLIRProgram, dependency_graph: Optional[DependencyGraph] = None
) -> MutualRecursionResult:
    """Detect mutually recursive relation groups."""
    graph = dependency_graph or build_dependency_graph(program)
    groups: List[FrozenSet[str]] = []
    self_recursive: List[str] = []
    for component in graph.recursive_components():
        if len(component) > 1:
            groups.append(component)
        else:
            (relation,) = tuple(component)
            self_recursive.append(relation)
    return MutualRecursionResult(
        has_mutual_recursion=bool(groups),
        groups=groups,
        self_recursive=sorted(self_recursive),
    )


def recursion_summary(
    program: DLIRProgram, dependency_graph: Optional[DependencyGraph] = None
) -> Dict[str, object]:
    """Return a compact dictionary summarizing the recursion structure."""
    graph = dependency_graph or build_dependency_graph(program)
    linearity = analyze_linearity(program, graph)
    mutual = analyze_mutual_recursion(program, graph)
    return {
        "has_recursion": linearity.has_recursion,
        "is_linear": linearity.is_linear,
        "has_mutual_recursion": mutual.has_mutual_recursion,
        "recursive_relations": sorted(recursive_relations(program, graph)),
    }
