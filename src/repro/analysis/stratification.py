"""Stratification analysis.

A DLIR program is stratifiable when no negation or aggregation edge occurs
inside a dependency cycle.  Stratification assigns every relation a stratum
number such that positive dependencies stay within or below a stratum while
negated/aggregated dependencies come strictly from lower strata; the Datalog
engine evaluates strata bottom-up in that order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List

from repro.analysis.dependencies import DependencyGraph, build_dependency_graph
from repro.common.errors import AnalysisError
from repro.dlir.core import DLIRProgram


@dataclass
class StratificationResult:
    """Outcome of stratification.

    ``stratum_of`` maps every relation to its stratum index (0-based) when the
    program is stratifiable; ``violations`` lists human-readable reasons when
    it is not.
    """

    is_stratifiable: bool
    stratum_of: Dict[str, int] = field(default_factory=dict)
    strata: List[List[str]] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)

    def stratum_count(self) -> int:
        """Return the number of strata (0 when unstratifiable)."""
        return len(self.strata)


def _subsumption_relations(program: DLIRProgram) -> set:
    """Return relations defined with a min/max subsumption marker.

    A dependency *on* such a relation from outside its own recursive component
    behaves like an aggregation dependency: the consumer must live in a higher
    stratum so it only reads the final (best-value) facts.
    """
    return {
        rule.head.relation
        for rule in program.rules
        if rule.subsume_min is not None or rule.subsume_max is not None
    }


def analyze_stratification(
    program: DLIRProgram, dependency_graph: DependencyGraph = None
) -> StratificationResult:
    """Check stratifiability and compute a stratum assignment."""
    graph = dependency_graph or build_dependency_graph(program)
    subsumed = _subsumption_relations(program)
    violations: List[str] = []
    for edge in graph.edges:
        if not (edge.negated or edge.through_aggregation):
            continue
        if graph.same_component(edge.source, edge.target):
            kind = "negation" if edge.negated else "aggregation"
            violations.append(
                f"{kind} from {edge.source!r} to {edge.target!r} occurs inside a "
                "recursive cycle"
            )
    if violations:
        return StratificationResult(is_stratifiable=False, violations=violations)

    # Assign strata by walking SCCs in topological order: a component's stratum
    # is the maximum over (stratum of positive deps) and (stratum of
    # negated/aggregated/subsumption deps + 1).
    stratum_of: Dict[str, int] = {}
    order = graph.condensation_order()
    component_stratum: Dict[FrozenSet[str], int] = {}
    for component in order:
        stratum = 0
        for relation in component:
            for edge in graph.edges:
                if edge.target != relation or edge.source in component:
                    continue
                source_component = graph.scc_of.get(edge.source)
                if source_component is None:
                    continue
                source_stratum = component_stratum.get(source_component, 0)
                if edge.negated or edge.through_aggregation or edge.source in subsumed:
                    stratum = max(stratum, source_stratum + 1)
                else:
                    stratum = max(stratum, source_stratum)
        component_stratum[component] = stratum
        for relation in component:
            stratum_of[relation] = stratum
    stratum_count = max(stratum_of.values(), default=-1) + 1
    strata: List[List[str]] = [[] for _ in range(stratum_count)]
    for relation in sorted(stratum_of):
        strata[stratum_of[relation]].append(relation)
    return StratificationResult(
        is_stratifiable=True, stratum_of=stratum_of, strata=strata
    )


def stratify(program: DLIRProgram) -> List[List[str]]:
    """Return the strata of ``program`` or raise :class:`AnalysisError`."""
    result = analyze_stratification(program)
    if not result.is_stratifiable:
        raise AnalysisError(
            "program is not stratifiable: " + "; ".join(result.violations)
        )
    return result.strata
