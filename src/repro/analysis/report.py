"""Combined analysis report and backend capability checking.

:func:`analyze_program` runs every analysis once over a shared dependency
graph and returns an :class:`AnalysisReport`.  :func:`check_backend_support`
implements the paper's "identify unsupported queries by a backend" goal: each
backend declares its capabilities (linear recursion only, no mutual
recursion, no subsumption, ...) and the report is matched against them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.dependencies import DependencyGraph, build_dependency_graph
from repro.analysis.monotonicity import MonotonicityResult, analyze_monotonicity
from repro.analysis.recursion import (
    LinearityResult,
    MutualRecursionResult,
    analyze_linearity,
    analyze_mutual_recursion,
)
from repro.analysis.safety import SafetyResult, analyze_safety
from repro.analysis.stratification import StratificationResult, analyze_stratification
from repro.analysis.termination import TerminationResult, analyze_termination
from repro.dlir.core import DLIRProgram


@dataclass(frozen=True)
class BackendCapability:
    """The feature set a target backend supports."""

    name: str
    supports_recursion: bool = True
    supports_nonlinear_recursion: bool = True
    supports_mutual_recursion: bool = True
    supports_negation: bool = True
    supports_aggregation: bool = True
    supports_subsumption: bool = True


#: Capability profiles for the backends shipped with this repository.  The
#: relational profiles mirror SQL's ``WITH RECURSIVE`` restrictions (linear,
#: non-mutual recursion only); the Datalog profile mirrors Soufflé.
BACKEND_CAPABILITIES: Dict[str, BackendCapability] = {
    "souffle": BackendCapability(name="souffle"),
    "datalog-engine": BackendCapability(name="datalog-engine"),
    "sql": BackendCapability(
        name="sql",
        supports_nonlinear_recursion=False,
        supports_mutual_recursion=False,
        supports_subsumption=False,
    ),
    "sqlite": BackendCapability(
        name="sqlite",
        supports_nonlinear_recursion=False,
        supports_mutual_recursion=False,
        supports_subsumption=False,
    ),
    "relational-engine": BackendCapability(
        name="relational-engine",
        supports_nonlinear_recursion=False,
        supports_mutual_recursion=False,
        supports_subsumption=False,
    ),
    "graph-engine": BackendCapability(
        name="graph-engine",
        supports_negation=False,
        supports_mutual_recursion=False,
        supports_nonlinear_recursion=False,
    ),
}


@dataclass
class AnalysisReport:
    """All static analysis results for one DLIR program."""

    stratification: StratificationResult
    linearity: LinearityResult
    mutual_recursion: MutualRecursionResult
    monotonicity: MonotonicityResult
    termination: TerminationResult
    safety: SafetyResult
    warnings: List[str] = field(default_factory=list)

    def summary(self) -> Dict[str, object]:
        """Return a flat summary dictionary suitable for printing or logging."""
        return {
            "stratifiable": self.stratification.is_stratifiable,
            "strata": self.stratification.stratum_count(),
            "has_recursion": self.linearity.has_recursion,
            "linear_recursion": self.linearity.is_linear,
            "mutual_recursion": self.mutual_recursion.has_mutual_recursion,
            "monotonic": self.monotonicity.is_monotonic,
            "may_not_terminate": self.termination.may_not_terminate,
            "safe": self.safety.is_safe,
            "warnings": list(self.warnings),
        }

    def to_text(self) -> str:
        """Render the report as a short human-readable block."""
        summary = self.summary()
        lines = ["static analysis report:"]
        for key, value in summary.items():
            if key == "warnings":
                continue
            lines.append(f"  {key:<20} {value}")
        for warning in self.warnings:
            lines.append(f"  warning: {warning}")
        return "\n".join(lines)


def analyze_program(
    program: DLIRProgram, dependency_graph: Optional[DependencyGraph] = None
) -> AnalysisReport:
    """Run every static analysis over ``program`` and collect the results."""
    graph = dependency_graph or build_dependency_graph(program)
    stratification = analyze_stratification(program, graph)
    linearity = analyze_linearity(program, graph)
    mutual = analyze_mutual_recursion(program, graph)
    monotonicity = analyze_monotonicity(program, graph)
    termination = analyze_termination(program, graph)
    safety = analyze_safety(program)
    warnings: List[str] = []
    warnings.extend(stratification.violations)
    warnings.extend(termination.warnings)
    warnings.extend(safety.unsafe_rules)
    return AnalysisReport(
        stratification=stratification,
        linearity=linearity,
        mutual_recursion=mutual,
        monotonicity=monotonicity,
        termination=termination,
        safety=safety,
        warnings=warnings,
    )


def check_backend_support(
    report: AnalysisReport, backend: BackendCapability
) -> List[str]:
    """Return the reasons ``backend`` cannot run the analysed program.

    An empty list means the backend supports the program.
    """
    problems: List[str] = []
    has_subsumption = report.monotonicity.lattice_monotone_rules > 0
    if report.linearity.has_recursion and not backend.supports_recursion:
        problems.append(f"backend {backend.name!r} does not support recursion")
    if (
        report.linearity.has_recursion
        and not report.linearity.is_linear
        and not backend.supports_nonlinear_recursion
    ):
        problems.append(
            f"backend {backend.name!r} supports only linear recursion but the "
            "program contains non-linear recursive rules"
        )
    if (
        report.mutual_recursion.has_mutual_recursion
        and not backend.supports_mutual_recursion
    ):
        problems.append(
            f"backend {backend.name!r} does not support mutually recursive rules"
        )
    if report.monotonicity.uses_negation and not backend.supports_negation:
        problems.append(f"backend {backend.name!r} does not support negation")
    if report.monotonicity.uses_aggregation and not backend.supports_aggregation:
        problems.append(f"backend {backend.name!r} does not support aggregation")
    if has_subsumption and not backend.supports_subsumption:
        problems.append(
            f"backend {backend.name!r} does not support min/max subsumption "
            "(shortest-path recursion)"
        )
    if not report.stratification.is_stratifiable:
        problems.append("program is not stratifiable")
    if not report.safety.is_safe:
        problems.append("program contains unsafe rules")
    return problems
