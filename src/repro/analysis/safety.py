"""Safety (range restriction) analysis.

A DLIR rule is *safe* when every variable that appears in its head, in a
negated atom, in a comparison, or in an aggregation argument also appears in
at least one positive body atom (or is bound transitively through an equality
with a bound term).  Unsafe rules have no finite meaning and are rejected
before evaluation or unparsing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from repro.dlir.core import (
    Comparison,
    Const,
    DLIRProgram,
    Rule,
    Var,
    term_variables,
)


@dataclass
class SafetyResult:
    """Outcome of safety analysis: unsafe rules with the offending variables."""

    is_safe: bool
    unsafe_rules: List[str] = field(default_factory=list)


def _bound_variables(rule: Rule) -> Set[str]:
    """Return the variables bound by positive atoms and equalities."""
    bound: Set[str] = set()
    for atom in rule.body_atoms():
        bound.update(atom.variables())
    # Equality comparisons propagate boundness in both directions until a
    # fixpoint is reached (e.g. ``p = cityId`` binds ``cityId`` once ``p`` is
    # bound by an atom).
    changed = True
    while changed:
        changed = False
        for comparison in rule.comparisons():
            if comparison.op != "=":
                continue
            left_vars = set(term_variables(comparison.left))
            right_vars = set(term_variables(comparison.right))
            left_bound = not left_vars or left_vars <= bound
            right_bound = not right_vars or right_vars <= bound
            left_groundable = left_bound or isinstance(comparison.left, Const)
            right_groundable = right_bound or isinstance(comparison.right, Const)
            if left_groundable and not right_vars <= bound:
                if isinstance(comparison.right, Var) or right_vars:
                    before = len(bound)
                    bound.update(right_vars)
                    changed = changed or len(bound) != before
            if right_groundable and not left_vars <= bound:
                if isinstance(comparison.left, Var) or left_vars:
                    before = len(bound)
                    bound.update(left_vars)
                    changed = changed or len(bound) != before
    return bound


def _required_variables(rule: Rule) -> Set[str]:
    """Return the variables that must be bound for the rule to be safe."""
    required: Set[str] = set()
    aggregated = set(rule.aggregate_result_names())
    for term in rule.head.terms:
        required.update(name for name in term_variables(term) if name not in aggregated)
    for negated in rule.negated_atoms():
        required.update(negated.atom.variables())
    for comparison in rule.comparisons():
        if comparison.op == "=":
            continue  # equalities can bind; inequality operands must be bound
        required.update(comparison.variables())
    for aggregation in rule.aggregations:
        if aggregation.argument is not None:
            required.update(term_variables(aggregation.argument))
    return required


def analyze_rule_safety(rule: Rule) -> List[str]:
    """Return the unbound-but-required variables of ``rule`` (empty if safe)."""
    bound = _bound_variables(rule)
    required = _required_variables(rule)
    return sorted(required - bound)


def analyze_safety(program: DLIRProgram) -> SafetyResult:
    """Check range restriction for every rule of ``program``."""
    unsafe: List[str] = []
    for rule in program.rules:
        missing = analyze_rule_safety(rule)
        if missing:
            unsafe.append(f"{rule}  -- unbound variables: {', '.join(missing)}")
    return SafetyResult(is_safe=not unsafe, unsafe_rules=unsafe)
