"""Static analyses over DLIR programs (paper Section 4).

All analyses operate on DLIR so that each is implemented once, independent of
the source query language:

* :mod:`repro.analysis.dependencies` -- the predicate dependency graph and
  its strongly connected components (the substrate of every other analysis).
* :mod:`repro.analysis.stratification` -- stratified-negation/aggregation
  checking and stratum assignment.
* :mod:`repro.analysis.recursion` -- linearity and mutual-recursion analysis.
* :mod:`repro.analysis.monotonicity` -- monotonicity under set inclusion.
* :mod:`repro.analysis.termination` -- heuristics for possible
  non-termination (arithmetic over unbounded domains inside recursion).
* :mod:`repro.analysis.safety` -- range restriction (variable safety).
* :mod:`repro.analysis.report` -- a combined :class:`AnalysisReport` plus
  backend capability checking.
"""

from repro.analysis.dependencies import DependencyGraph, build_dependency_graph
from repro.analysis.monotonicity import MonotonicityResult, analyze_monotonicity
from repro.analysis.recursion import (
    LinearityResult,
    MutualRecursionResult,
    analyze_linearity,
    analyze_mutual_recursion,
    recursive_relations,
)
from repro.analysis.report import (
    AnalysisReport,
    BackendCapability,
    analyze_program,
    check_backend_support,
)
from repro.analysis.safety import SafetyResult, analyze_safety
from repro.analysis.stratification import (
    StratificationResult,
    analyze_stratification,
    stratify,
)
from repro.analysis.termination import TerminationResult, analyze_termination

__all__ = [
    "DependencyGraph",
    "build_dependency_graph",
    "StratificationResult",
    "analyze_stratification",
    "stratify",
    "LinearityResult",
    "MutualRecursionResult",
    "analyze_linearity",
    "analyze_mutual_recursion",
    "recursive_relations",
    "MonotonicityResult",
    "analyze_monotonicity",
    "TerminationResult",
    "analyze_termination",
    "SafetyResult",
    "analyze_safety",
    "AnalysisReport",
    "BackendCapability",
    "analyze_program",
    "check_backend_support",
]
