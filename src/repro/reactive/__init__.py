"""Reactive layer: standing queries, subscriptions, rules and scheduling.

Built on the Datalog engine's incremental view maintenance: a mutation
batch yields a :class:`~repro.engines.datalog.ivm.MaintenanceReport` of
effective result-row changes, which this package routes to subscribers
(:mod:`~repro.reactive.subscriptions`), trigger actions
(:mod:`~repro.reactive.rules`) and periodic ticks
(:mod:`~repro.reactive.scheduler`) — without ever re-running the standing
queries.
"""

from repro.reactive.rules import ActionContext, ActionRegistry, ReactiveRule
from repro.reactive.scheduler import ReactiveScheduler, ScheduledJob
from repro.reactive.subscriptions import (
    ReactiveCascadeError,
    ReactiveCycleError,
    ReactiveError,
    ResultDelta,
    Subscription,
    SubscriptionManager,
)

__all__ = [
    "ActionContext",
    "ActionRegistry",
    "ReactiveCascadeError",
    "ReactiveCycleError",
    "ReactiveError",
    "ReactiveRule",
    "ReactiveScheduler",
    "ResultDelta",
    "ScheduledJob",
    "Subscription",
    "SubscriptionManager",
]
