"""A small periodic scheduler for reactive flushes and housekeeping.

Sessions flush subscriptions at every mutation by default; turning
``auto_flush`` off and attaching a scheduler instead coalesces bursts of
mutations into ticks — the standing queries then catch up once per
interval, in one O(|Δ|) maintenance pass over the whole burst.

The scheduler is deliberately minimal: named jobs with fixed intervals on
one daemon thread, driven by :func:`time.monotonic`.  ``run_pending(now)``
is the testable core — tests drive virtual time through it without
starting the thread.  A :class:`~repro.session.Session` is single-threaded
by contract, so a scheduler that flushes a session must be that session's
only concurrent driver (the serving layer routes flushes through worker
queues instead of sharing sessions across threads).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional


class ScheduledJob:
    """One recurring job: ``fn`` every ``interval`` seconds.

    Errors are recorded (``error_count`` / ``last_error``) and the job
    keeps its schedule — one failing job must not stall the tick loop.
    """

    __slots__ = (
        "name",
        "fn",
        "interval",
        "next_due",
        "run_count",
        "error_count",
        "last_error",
        "active",
    )

    def __init__(
        self, name: str, fn: Callable[[], object], interval: float, now: float
    ) -> None:
        self.name = name
        self.fn = fn
        self.interval = float(interval)
        self.next_due = now + self.interval
        self.run_count = 0
        self.error_count = 0
        self.last_error: Optional[BaseException] = None
        self.active = True

    def cancel(self) -> None:
        """Stop future runs; idempotent."""
        self.active = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "live" if self.active else "cancelled"
        return (
            f"ScheduledJob({self.name!r} every {self.interval}s, "
            f"ran {self.run_count}x, {state})"
        )


class ReactiveScheduler:
    """Run registered jobs on a periodic background tick."""

    def __init__(self, *, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._jobs: Dict[str, ScheduledJob] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._next_name = 1
        #: total job invocations across all ticks
        self.tick_count = 0

    # -- registration ------------------------------------------------------

    def every(
        self,
        interval: float,
        fn: Callable[[], object],
        *,
        name: Optional[str] = None,
    ) -> ScheduledJob:
        """Schedule ``fn`` to run every ``interval`` seconds (first run one
        interval from now)."""
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval!r}")
        with self._lock:
            if name is None:
                name = f"job-{self._next_name}"
                self._next_name += 1
            if name in self._jobs and self._jobs[name].active:
                raise ValueError(f"a scheduled job named {name!r} already exists")
            job = ScheduledJob(name, fn, interval, self._clock())
            self._jobs[name] = job
            return job

    def watch(self, session, *, interval: float = 0.05) -> ScheduledJob:
        """Flush ``session``'s subscriptions every ``interval`` seconds.

        Intended for sessions with ``reactive.auto_flush = False`` — the
        tick becomes the commit point for notification delivery.
        """
        manager = session.reactive
        return self.every(
            interval, manager.flush, name=f"watch-session-{id(session):x}"
        )

    def cancel(self, name: str) -> None:
        """Cancel the named job (missing names are ignored)."""
        with self._lock:
            job = self._jobs.pop(name, None)
        if job is not None:
            job.cancel()

    def jobs(self) -> List[ScheduledJob]:
        """Return the live jobs."""
        with self._lock:
            return [job for job in self._jobs.values() if job.active]

    # -- the tick ----------------------------------------------------------

    def run_pending(self, now: Optional[float] = None) -> int:
        """Run every job whose deadline has passed; return how many ran.

        The testable core of the scheduler: pass ``now`` explicitly to
        drive virtual time.  A job that slipped more than one interval
        runs once and re-anchors to ``now`` (no catch-up bursts).
        """
        if now is None:
            now = self._clock()
        with self._lock:
            due = [
                job
                for job in self._jobs.values()
                if job.active and now >= job.next_due
            ]
        ran = 0
        for job in due:
            job.next_due = now + job.interval
            job.run_count += 1
            ran += 1
            try:
                job.fn()
            except Exception as exc:  # noqa: BLE001 - recorded, not raised
                job.error_count += 1
                job.last_error = exc
        self.tick_count += ran
        return ran

    # -- the thread --------------------------------------------------------

    def start(self) -> None:
        """Start the background tick thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="raqlet-reactive-scheduler", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the tick thread and wait for it to exit."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.is_set():
            self.run_pending()
            with self._lock:
                deadlines = [
                    job.next_due for job in self._jobs.values() if job.active
                ]
            now = self._clock()
            delay = min((due - now for due in deadlines), default=0.05)
            self._stop.wait(timeout=max(0.001, min(delay, 0.5)))

    def __enter__(self) -> "ReactiveScheduler":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
