"""Reactive rules: standing queries that trigger registered actions.

A reactive rule maps a query's result delta to an **action** — a named
Python callable registered in an :class:`ActionRegistry`.  The canonical
shape mirrors a Datalog trigger: the query's head relation is the event
(``High(s, v) :- Reading(s, v), v >= 95``), and the action fires with the
rows that entered (or left) that relation after each mutation batch.

Actions receive an :class:`ActionContext` and may themselves ``insert`` /
``retract`` on the session — deriving new facts (e.g. an ``alert`` EDB row)
that other standing queries and rules observe in turn.  Such cascades are
executed by :meth:`SubscriptionManager.flush`'s round loop, bounded by
``max_cascade_depth`` with repeated-delta cycle detection, so a feedback
loop fails loudly instead of spinning.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.reactive.subscriptions import (
    ReactiveError,
    ResultDelta,
    Subscription,
)

Row = Tuple
Action = Callable[["ActionContext"], object]

_VALID_ON = ("added", "removed", "both")


class ActionRegistry:
    """Named actions reactive rules can fire.

    Rules reference actions by *name* and resolve them at fire time, so an
    action can be re-registered (hot-swapped) without touching the rules
    bound to it.  Usable as a decorator::

        @session.reactive.actions.register("page-oncall")
        def page(ctx):
            ...
    """

    def __init__(self) -> None:
        self._actions: Dict[str, Action] = {}

    def register(self, name: str, fn: Optional[Action] = None):
        """Register ``fn`` under ``name``; returns ``fn`` (decorator-style)
        or, when called with only a name, a decorator."""
        if fn is None:
            def decorator(inner: Action) -> Action:
                self._actions[name] = inner
                return inner

            return decorator
        self._actions[name] = fn
        return fn

    def unregister(self, name: str) -> None:
        """Drop a named action; rules bound to it fail loudly at fire time."""
        self._actions.pop(name, None)

    def get(self, name: str) -> Action:
        """Resolve an action by name (``ReactiveError`` when unknown)."""
        try:
            return self._actions[name]
        except KeyError:
            raise ReactiveError(f"no registered action named {name!r}") from None

    def names(self) -> List[str]:
        """Return the registered action names, sorted."""
        return sorted(self._actions)

    def __contains__(self, name: str) -> bool:
        return name in self._actions


class ActionContext:
    """Everything an action sees when its rule fires.

    ``rows`` is the slice of the delta the rule's ``on`` selector matched
    (added rows, removed rows, or — for ``on="both"`` — added rows; the
    full :class:`ResultDelta` is always available as ``delta``).  The
    session is exposed for follow-on mutations; those cascade through the
    current flush's next round.
    """

    __slots__ = ("session", "rule", "delta", "rows")

    def __init__(
        self,
        session,
        rule: "ReactiveRule",
        delta: ResultDelta,
        rows: List[Row],
    ) -> None:
        self.session = session
        self.rule = rule
        self.delta = delta
        self.rows = rows


class ReactiveRule:
    """One trigger: head-relation delta → registered action.

    ``fire_count`` counts action invocations; action exceptions surface on
    the underlying subscription's ``error_count``/``last_error`` (delivery
    is isolated exactly like any subscriber callback).
    """

    def __init__(
        self,
        manager,  # SubscriptionManager
        name: str,
        action: str,
        on: str,
    ) -> None:
        self.manager = manager
        self.name = name
        self.action = action
        self.on = on
        self.fire_count = 0
        self.subscription: Subscription = None  # type: ignore[assignment]

    def _on_delta(self, delta: ResultDelta) -> None:
        if self.on == "added":
            rows = delta.added
        elif self.on == "removed":
            rows = delta.removed
        else:
            rows = delta.added
        if self.on != "both" and not rows:
            return
        fn = self.manager.actions.get(self.action)
        self.fire_count += 1
        fn(ActionContext(self.manager._session, self, delta, rows))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReactiveRule({self.name!r} -> {self.action!r} on={self.on}, "
            f"fired {self.fire_count}x)"
        )


def add_rule(
    manager,
    name: str,
    query,
    action: str,
    *,
    on: str = "added",
    parameters=None,
    **bindings: object,
) -> ReactiveRule:
    """Create and register a reactive rule on ``manager``.

    ``query`` is anything :meth:`SubscriptionManager.subscribe` accepts;
    ``action`` must already be registered (validated here so a typo fails
    at rule-definition time, not on the first matching mutation).  ``on``
    selects which side of the delta triggers: ``"added"`` (default),
    ``"removed"``, or ``"both"`` (fires on any change).
    """
    if on not in _VALID_ON:
        raise ReactiveError(
            f"invalid rule trigger on={on!r}; expected one of {_VALID_ON}"
        )
    if name in manager.rules:
        raise ReactiveError(f"a reactive rule named {name!r} already exists")
    manager.actions.get(action)  # validate eagerly
    rule = ReactiveRule(manager, name, action, on)
    rule.subscription = manager.subscribe(
        query, rule._on_delta, parameters=parameters, name=name, **bindings
    )
    manager.rules[name] = rule
    return rule
