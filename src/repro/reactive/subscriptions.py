"""Standing queries and subscriptions over IVM deltas.

A :class:`~repro.session.Session` answers one query at a time; this module
turns it into a **standing-query system**: callers register a query (plus a
parameter binding) once and are *pushed* the ``(added, removed)`` result
rows after every mutation batch that changes the result — computed by the
engine's incremental maintainer in O(|Δ|), never by re-running the query.

The moving parts:

* Each distinct ``(compiled query, binding)`` pair gets one dedicated
  :class:`_StandingQuery` — its own :class:`~repro.session.PreparedQuery`
  (own IDB namespace on the shared store), continuously maintained and
  never disturbed by the caller's own ``run()`` calls.  Any number of
  :class:`Subscription`\\ s share one standing query, so K subscribers to
  the same query cost one maintenance pass, not K.
* :meth:`SubscriptionManager.flush` is the delivery point: every stale
  standing query syncs (``PreparedQuery.sync`` → the engine's
  :class:`~repro.engines.datalog.ivm.MaintenanceReport`), non-empty deltas
  become :class:`ResultDelta` notifications, and each live subscription's
  callback runs exactly once per committed batch.  Sessions flush
  automatically at the end of every ``insert``/``retract``/``ingest``
  (``auto_flush``); turn it off to coalesce batches and flush manually or
  from a :class:`~repro.reactive.scheduler.ReactiveScheduler` tick.
* Callbacks may themselves mutate the session (that is how
  :mod:`~repro.reactive.rules` actions cascade): the re-entrant flush is
  absorbed and the outer loop runs another round, to a bounded depth with
  repeated-delta cycle detection.

Exactness is anchored by the maintenance report: the incremental path
collects effective IDB row transitions, and every fallback (bulk ingest,
unmaintainable program, maintenance error) snapshots and diffs around the
re-derivation — so a delivered delta is always exactly the before/after
set difference of the standing query's result.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.common.errors import RaqletError

Row = Tuple
DeltaCallback = Callable[["ResultDelta"], object]


class ReactiveError(RaqletError):
    """Base class for reactive-subsystem failures."""


class ReactiveCascadeError(ReactiveError):
    """A rule/subscription cascade exceeded the bounded flush depth."""


class ReactiveCycleError(ReactiveError):
    """A rule/subscription cascade repeated an identical delta — a cycle
    that would never converge (e.g. two actions endlessly undoing each
    other)."""


class ResultDelta:
    """One notification: the result rows a standing query gained and lost.

    ``added``/``removed`` are sorted row lists in the query's return-column
    order (``columns``); ``epoch`` is the session mutation epoch the delta
    brought the subscriber up to.  Exactly the before/after set difference
    of the query's full result — oracle-checked by the differential suite.
    """

    __slots__ = ("name", "columns", "added", "removed", "epoch")

    def __init__(
        self,
        name: str,
        columns: List[str],
        added: List[Row],
        removed: List[Row],
        epoch: int,
    ) -> None:
        self.name = name
        self.columns = columns
        self.added = added
        self.removed = removed
        self.epoch = epoch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultDelta({self.name!r}, +{len(self.added)} "
            f"-{len(self.removed)} @epoch {self.epoch})"
        )


class Subscription:
    """One subscriber's handle on a standing query.

    Carries delivery counters (asserted by tests and surfaced by the
    serving stats), and :meth:`unsubscribe`.  Callback exceptions are
    caught and recorded (``error_count`` / ``last_error``) — a broken
    subscriber must never poison the session's mutation path or starve
    other subscribers.
    """

    def __init__(
        self,
        manager: "SubscriptionManager",
        standing: "_StandingQuery",
        callback: DeltaCallback,
        subscription_id: int,
    ) -> None:
        self._manager = manager
        self._standing = standing
        self._callback = callback
        self.id = subscription_id
        self.active = True
        #: how many notifications this subscription received
        self.delivery_count = 0
        #: total added / removed rows across all notifications
        self.rows_added = 0
        self.rows_removed = 0
        #: callback failures (the exception is kept, not raised)
        self.error_count = 0
        self.last_error: Optional[BaseException] = None

    @property
    def query_name(self) -> str:
        """Return the standing query's display name."""
        return self._standing.name

    def unsubscribe(self) -> None:
        """Stop deliveries; idempotent.  The standing query itself is torn
        down once its last subscription leaves."""
        self._manager.unsubscribe(self)

    def _deliver(self, delta: ResultDelta) -> None:
        self.delivery_count += 1
        self.rows_added += len(delta.added)
        self.rows_removed += len(delta.removed)
        try:
            self._callback(delta)
        except Exception as exc:  # noqa: BLE001 - recorded, never propagated
            self.error_count += 1
            self.last_error = exc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "live" if self.active else "closed"
        return f"Subscription(#{self.id} on {self.query_name!r}, {state})"


class _StandingQuery:
    """One continuously-maintained ``(compiled query, binding)`` pair.

    Owns a dedicated :class:`~repro.session.PreparedQuery` so subscriber
    state can never be clobbered by the caller running the same query with
    other bindings.  ``sync()`` on the prepared query pins the session's
    delta log and reads deltas off maintenance reports.
    """

    def __init__(
        self,
        manager: "SubscriptionManager",
        key: Tuple[int, str],
        name: str,
        prepared,  # repro.session.PreparedQuery (dedicated instance)
        params: Dict[str, object],
    ) -> None:
        self.manager = manager
        self.key = key
        self.name = name
        self.prepared = prepared
        self.params = params
        self.subscriptions: List[Subscription] = []
        self.columns: List[str] = []
        #: how many times this standing query was brought current
        self.sync_count = 0

    def baseline(self) -> None:
        """Derive the initial result (not delivered — subscribers observe
        changes, not the initial state) and remember the return columns."""
        result = self.prepared.run(self.params)
        self.columns = list(result.columns)
        # Enrol in delta tracking *now* so the very next refresh — even a
        # cold one crossing a bulk ingest — reports its delta.
        self.prepared._track_deltas = True

    def stale(self) -> bool:
        """Whether the session has mutated past this query's derivation."""
        return (
            self.prepared._mutation_epoch
            != self.manager._session.mutation_epoch
        )

    def sync(self) -> Tuple[List[Row], List[Row]]:
        """Bring the derivation current; return the output-row delta."""
        self.sync_count += 1
        return self.prepared.sync(self.params)

    def delta_columns(self, rows: List[Row]) -> List[str]:
        """Return the column names for a delta (synthesised when the
        baseline result carried none)."""
        if self.columns or not rows:
            return self.columns
        self.columns = [f"c{index}" for index in range(len(rows[0]))]
        return self.columns

    def close(self) -> None:
        """Release the dedicated prepared query's log pin and IDB rows."""
        session = self.manager._session
        session._unregister_prepared(self.prepared)
        for relation in self.prepared.idb_relations:
            session.store.clear_relation(relation)


class SubscriptionManager:
    """The session-level hub: standing queries, subscriptions and rules.

    Reached as ``session.reactive`` (created lazily).  ``flush()`` is
    re-entrant-safe and runs rule/subscription cascades to a bounded
    depth; ``auto_flush`` (default True) makes every session mutation
    batch flush at its commit point.
    """

    def __init__(
        self,
        session,  # repro.session.Session
        auto_flush: bool = True,
        max_cascade_depth: int = 16,
    ) -> None:
        self._session = session
        self.auto_flush = auto_flush
        #: cascade rounds one flush may run before ReactiveCascadeError
        self.max_cascade_depth = max_cascade_depth
        self._standing: Dict[Tuple[int, str], _StandingQuery] = {}
        self._subscriptions: Dict[int, Subscription] = {}
        self._next_id = 1
        self._flushing = False
        #: reactive rules by name (managed by repro.reactive.rules)
        self.rules: Dict[str, object] = {}
        #: the action registry rule names resolve against
        self._actions = None
        #: flushes that delivered at least one notification / total flushes
        self.flush_count = 0
        #: notifications delivered across all subscriptions
        self.notification_count = 0

    # -- registry ----------------------------------------------------------

    @property
    def actions(self):
        """Return the session's :class:`~repro.reactive.rules.ActionRegistry`."""
        if self._actions is None:
            from repro.reactive.rules import ActionRegistry

            self._actions = ActionRegistry()
        return self._actions

    def register_action(self, name: str, fn=None):
        """Register a named action (usable as a decorator) — shorthand for
        ``manager.actions.register``."""
        return self.actions.register(name, fn)

    def add_rule(
        self,
        name: str,
        query,
        action: str,
        *,
        on: str = "added",
        parameters=None,
        **bindings: object,
    ):
        """Create a reactive rule: when ``query``'s result changes, run the
        registered ``action`` with the delta — see
        :func:`repro.reactive.rules.add_rule`."""
        from repro.reactive.rules import add_rule

        return add_rule(
            self, name, query, action, on=on, parameters=parameters, **bindings
        )

    def remove_rule(self, name: str) -> None:
        """Tear down a reactive rule and its subscription."""
        rule = self.rules.pop(name, None)
        if rule is None:
            raise ReactiveError(f"no reactive rule named {name!r}")
        rule.subscription.unsubscribe()

    # -- subscriptions -----------------------------------------------------

    def subscribe(
        self,
        query,
        callback: DeltaCallback,
        *,
        parameters=None,
        name: Optional[str] = None,
        **bindings: object,
    ) -> Subscription:
        """Attach ``callback`` to the standing query for ``(query, binding)``.

        ``query`` is query text, a compiled query, or a
        :class:`~repro.session.PreparedQuery` (whose compiled program is
        reused — the standing derivation itself stays private).  The
        initial result is derived as the baseline but **not** delivered:
        subscribers observe changes.  Identical ``(query, binding)`` pairs
        share one standing query and one maintenance pass per batch.
        """
        standing = self._standing_for(query, parameters, bindings, name)
        subscription = Subscription(self, standing, callback, self._next_id)
        self._next_id += 1
        standing.subscriptions.append(subscription)
        self._subscriptions[subscription.id] = subscription
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        """Detach one subscription; tears the standing query down with its
        last subscriber.  Idempotent."""
        if not subscription.active:
            return
        subscription.active = False
        self._subscriptions.pop(subscription.id, None)
        standing = subscription._standing
        try:
            standing.subscriptions.remove(subscription)
        except ValueError:  # pragma: no cover - defensive
            pass
        if not standing.subscriptions:
            self._standing.pop(standing.key, None)
            standing.close()

    def subscription(self, subscription_id: int) -> Optional[Subscription]:
        """Return a live subscription by id (``None`` when gone)."""
        return self._subscriptions.get(subscription_id)

    @property
    def subscription_count(self) -> int:
        """Return how many subscriptions are live."""
        return len(self._subscriptions)

    @property
    def standing_count(self) -> int:
        """Return how many distinct standing queries are maintained."""
        return len(self._standing)

    def _standing_for(
        self,
        query,
        parameters,
        bindings,
        name: Optional[str],
    ) -> _StandingQuery:
        from repro.session import PreparedQuery

        if isinstance(query, PreparedQuery):
            compiled, optimized = query.compiled, query._optimized
        elif isinstance(query, str):
            template = self._session.prepare(query)
            compiled, optimized = template.compiled, template._optimized
        else:  # a CompiledQuery
            compiled, optimized = query, True
        resolved: Dict[str, object] = dict(parameters or {})
        resolved.update(bindings)
        # The binding is part of the standing query's identity.  repr() is
        # used (not hashing) so unhashable parameter values — rejected
        # later by the engine if truly unusable — cannot crash the lookup.
        binding_key = repr(sorted(resolved.items(), key=lambda item: item[0]))
        key = (id(compiled), binding_key)
        standing = self._standing.get(key)
        if standing is not None:
            return standing
        prepared = PreparedQuery(self._session, compiled, optimized)
        label = name or (
            (compiled.source_text or "").strip().splitlines()[0][:60]
            if getattr(compiled, "source_text", None)
            else f"standing-{len(self._standing) + 1}"
        )
        standing = _StandingQuery(self, key, label, prepared, resolved)
        standing.baseline()
        self._standing[key] = standing
        return standing

    # -- delivery ----------------------------------------------------------

    def flush(self) -> int:
        """Deliver every pending delta; return the notification count.

        Runs in rounds: each round syncs every stale standing query and
        delivers its non-empty delta to its subscribers.  Callbacks that
        mutate the session (rule actions) make more standing queries stale
        — the next round picks them up, bounded by ``max_cascade_depth``
        rounds and by repeated-delta cycle detection.  Re-entrant calls
        (a mutation inside a callback triggers ``auto_flush``) return 0
        immediately; the outer flush finishes the job.
        """
        if self._flushing:
            return 0
        self._flushing = True
        delivered = 0
        seen_deltas: Set[Tuple[Tuple[int, str], frozenset, frozenset]] = set()
        try:
            depth = 0
            while True:
                stale = [
                    standing
                    for standing in list(self._standing.values())
                    if standing.subscriptions and standing.stale()
                ]
                if not stale:
                    break
                depth += 1
                if depth > self.max_cascade_depth:
                    raise ReactiveCascadeError(
                        f"reactive cascade exceeded {self.max_cascade_depth} "
                        "rounds without converging (raise max_cascade_depth "
                        "or break the rule feedback loop)"
                    )
                for standing in stale:
                    added, removed = standing.sync()
                    if not added and not removed:
                        continue
                    signature = (
                        standing.key,
                        frozenset(added),
                        frozenset(removed),
                    )
                    if signature in seen_deltas:
                        raise ReactiveCycleError(
                            f"standing query {standing.name!r} produced the "
                            "same delta twice in one flush — a rule cycle "
                            "is endlessly re-deriving it"
                        )
                    seen_deltas.add(signature)
                    delta = ResultDelta(
                        standing.name,
                        standing.delta_columns(added or removed),
                        added,
                        removed,
                        self._session.mutation_epoch,
                    )
                    for subscription in list(standing.subscriptions):
                        if not subscription.active:
                            continue
                        subscription._deliver(delta)
                        delivered += 1
        finally:
            self._flushing = False
        if delivered:
            self.flush_count += 1
            self.notification_count += delivered
        return delivered

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Unsubscribe everything (the session is closing)."""
        for subscription in list(self._subscriptions.values()):
            subscription.active = False
        self._subscriptions.clear()
        for standing in list(self._standing.values()):
            standing.subscriptions.clear()
        self._standing.clear()
        self.rules.clear()
