"""Command-line interface for the Raqlet compiler.

Examples
--------
Compile a Cypher query against a PG-Schema file and print every artifact::

    raqlet compile --schema schema.pgs --cypher query.cyp --emit all

Run one of the bundled LDBC queries on every engine over a synthetic dataset
(``--store sqlite`` runs the Datalog engine on the SQLite-backed fact store,
``--executor interpreted`` selects its plan interpreter instead of the
default compiled closures, ``--executor columnar`` the NumPy column-array
executor)::

    raqlet ldbc --query sq1 --scale 200 --store sqlite --executor interpreted

Print the Datalog engine's plan report for a recursive query — join orders,
per-step fan-out estimates, and the adaptive re-planning counters::

    raqlet ldbc --query reach --scale 100 --explain

Print the static analysis report of a Datalog program::

    raqlet analyze --schema schema.pgs --datalog program.dl
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.ldbc import (
    complex_query_2,
    load_dataset,
    short_query_1,
    snb_schema_mapping,
)
from repro.ldbc.queries import (
    friend_reachability,
    friends_of_friends,
    shortest_path_query,
)
from repro.pipeline import Raqlet


def _read_file(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _parse_parameters(values: Optional[List[str]]) -> dict:
    parameters = {}
    for assignment in values or []:
        if "=" not in assignment:
            raise SystemExit(f"--param must look like name=value, got {assignment!r}")
        name, raw = assignment.split("=", 1)
        try:
            parameters[name] = json.loads(raw)
        except json.JSONDecodeError:
            parameters[name] = raw
    return parameters


def _cmd_compile(args: argparse.Namespace) -> int:
    raqlet = Raqlet(_read_file(args.schema))
    parameters = _parse_parameters(args.param)
    if args.cypher:
        compiled = raqlet.compile_cypher(
            _read_file(args.cypher), parameters, optimize=not args.no_optimize
        )
    elif args.sql:
        compiled = raqlet.compile_sql(
            _read_file(args.sql), optimize=not args.no_optimize
        )
    else:
        compiled = raqlet.compile_datalog(
            _read_file(args.datalog), optimize=not args.no_optimize
        )
    emit = args.emit
    if emit in ("pgir", "all") and compiled.lowering is not None:
        print("-- PGIR " + "-" * 50)
        print(compiled.pgir_text())
    if emit in ("dlir", "all"):
        print("-- DLIR (optimized) " + "-" * 38)
        print(compiled.program(optimized=True))
    if emit in ("datalog", "all"):
        print("-- Soufflé Datalog " + "-" * 39)
        print(compiled.datalog_text())
    if emit in ("sql", "all"):
        print("-- SQL " + "-" * 51)
        print(compiled.sql_text())
    if emit in ("analysis", "all") and compiled.analysis is not None:
        print("-- Analysis " + "-" * 46)
        print(compiled.analysis.to_text())
    for warning in compiled.warnings():
        print(f"warning: {warning}", file=sys.stderr)
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    raqlet = Raqlet(_read_file(args.schema))
    if args.cypher:
        compiled = raqlet.compile_cypher(
            _read_file(args.cypher), _parse_parameters(args.param), optimize=False
        )
    else:
        compiled = raqlet.compile_datalog(_read_file(args.datalog), optimize=False)
    assert compiled.analysis is not None
    print(compiled.analysis.to_text())
    for backend in ("souffle", "sql", "graph-engine"):
        problems = compiled.backend_problems(backend)
        status = "supported" if not problems else "; ".join(problems)
        print(f"  backend {backend:<14} {status}")
    return 0


_LDBC_QUERIES = {
    "sq1": lambda data, pid: short_query_1(pid),
    "cq2": lambda data, pid: complex_query_2(pid, data.dataset.median_message_date()),
    "fof": lambda data, pid: friends_of_friends(pid),
    "reach": lambda data, pid: friend_reachability(pid),
    "sp": lambda data, pid: shortest_path_query(pid, data.dataset.person_ids[-1]),
}


def _cmd_ldbc_repeat(args: argparse.Namespace, data, raqlet, person_id: int) -> int:
    """The warm serving path: one session, one prepared query, N bindings.

    The query is compiled once with its ``$`` parameters left late-bound;
    every run substitutes a different binding.  The counters printed at the
    end make the amortisation observable: the EDB is ingested once, plans
    are built once, and warm runs pay zero index rebuilds.
    """
    spec = _LDBC_QUERIES[args.query](data, person_id)
    session = raqlet.session(
        data.facts, store=args.store, executor=args.executor
    )
    prepared = session.prepare(spec["query"], optimize=not args.no_optimize)
    person_ids = list(data.dataset.person_ids)
    start = person_ids.index(person_id) if person_id in person_ids else 0
    print(
        f"query {args.query} on {args.scale} persons — "
        f"warm session path ({args.repeat} runs):"
    )
    for index in range(args.repeat):
        pid = person_ids[(start + index) % len(person_ids)]
        run_spec = _LDBC_QUERIES[args.query](data, pid)
        result = prepared.run(run_spec["parameters"])
        label = "cold" if index == 0 else "warm"
        binding = ", ".join(
            f"{name}={value}" for name, value in run_spec["parameters"].items()
        )
        print(
            f"  run {index + 1} ({label})  {binding}  "
            f"{len(result)} rows in {prepared.last_run_seconds * 1000:.1f} ms"
        )
    engine = prepared.engine
    print(
        f"  session counters: ingests={session.ingest_count} "
        f"plan_builds={engine.plan_build_count} replans={engine.replan_count} "
        f"index_builds={session.store.index_build_count} "
        f"resets={engine.reset_count}"
    )
    if args.explain:
        print(engine.explain())
    session.close()
    data.close()
    return 0


def _cmd_ldbc(args: argparse.Namespace) -> int:
    data = load_dataset(scale_persons=args.scale, seed=args.seed)
    raqlet = Raqlet(snb_schema_mapping())
    person_id = args.person if args.person is not None else data.dataset.default_person_id()
    if args.repeat > 1:
        return _cmd_ldbc_repeat(args, data, raqlet, person_id)
    spec = _LDBC_QUERIES[args.query](data, person_id)
    compiled = raqlet.compile_cypher(
        spec["query"], spec["parameters"], optimize=not args.no_optimize
    )
    if args.explain:
        # Plan observability mode: run only the Datalog engine and print its
        # plan report (join orders, cost estimates, re-plan counters).
        engine = raqlet.datalog_engine(
            compiled,
            data.facts,
            optimized=not args.no_optimize,
            store=args.store,
            executor=args.executor,
        )
        result = engine.query()
        print(f"query {args.query} on {args.scale} persons (person id {person_id}):")
        print(f"  datalog      {len(result)} rows")
        print(engine.explain())
        engine.store.close()
        data.close()
        return 0
    results = raqlet.run_everywhere(
        compiled,
        data.facts,
        data.relational_database(),
        data.property_graph(),
        data.sqlite_executor(),
        optimized=not args.no_optimize,
        datalog_store=args.store,
        datalog_executor=args.executor,
    )
    print(f"query {args.query} on {args.scale} persons (person id {person_id}):")
    for engine, result in results.items():
        print(f"  {engine:<12} {len(result)} rows")
    reference = next(iter(results.values()))
    agree = all(result.same_rows(reference) for result in results.values())
    print(f"  engines agree: {agree}")
    if args.show_rows:
        for row in reference.sorted_rows()[: args.show_rows]:
            print(f"    {row}")
    data.close()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve the bundled LDBC statements over the JSON TCP protocol.

    Loads a synthetic dataset, pre-registers every query in
    ``_LDBC_QUERIES`` under its short name (``$`` parameters stay
    late-bound, so clients supply bindings per request), and runs the
    asyncio server until a ``shutdown`` request arrives.
    """
    import asyncio

    from repro.serving import RaqletServer, ServingPool

    data = load_dataset(scale_persons=args.scale, seed=args.seed)
    raqlet = Raqlet(snb_schema_mapping())
    pool = ServingPool(
        raqlet,
        data.facts,
        workers=args.workers,
        store=args.store,
        executor=args.executor,
    )
    default_pid = data.dataset.default_person_id()
    for name, make_spec in sorted(_LDBC_QUERIES.items()):
        spec = make_spec(data, default_pid)
        params = pool.prepare(name, spec["query"])
        print(f"prepared {name}({', '.join(params)})")
    if args.tick:
        # Subscriptions already deliver per mutation; the ticker is a
        # periodic safety net for out-of-band writers to the shared EDB.
        pool.start_ticker(args.tick)
        print(f"notification tick every {args.tick}s")

    async def serve() -> None:
        server = RaqletServer(pool, host=args.host, port=args.port)
        host, port = await server.start()
        # The readiness line scripts wait for before connecting.
        print(f"raqlet serving on {host}:{port}", flush=True)
        await server.serve_until_shutdown()

    try:
        asyncio.run(serve())
    finally:
        pool.close()
        data.close()
    print("raqlet server stopped")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(prog="raqlet", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    compile_parser = subparsers.add_parser("compile", help="compile a query to all targets")
    compile_parser.add_argument("--schema", required=True, help="PG-Schema file")
    source = compile_parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--cypher", help="Cypher query file")
    source.add_argument("--datalog", help="Datalog program file")
    source.add_argument("--sql", help="recursive SQL query file")
    compile_parser.add_argument("--param", action="append", help="query parameter name=value")
    compile_parser.add_argument(
        "--emit",
        choices=["pgir", "dlir", "datalog", "sql", "analysis", "all"],
        default="all",
    )
    compile_parser.add_argument("--no-optimize", action="store_true")
    compile_parser.set_defaults(func=_cmd_compile)

    analyze_parser = subparsers.add_parser("analyze", help="run static analyses only")
    analyze_parser.add_argument("--schema", required=True)
    source = analyze_parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--cypher")
    source.add_argument("--datalog")
    analyze_parser.add_argument("--param", action="append")
    analyze_parser.set_defaults(func=_cmd_analyze)

    ldbc_parser = subparsers.add_parser("ldbc", help="run an LDBC query on every engine")
    ldbc_parser.add_argument("--query", choices=sorted(_LDBC_QUERIES), default="sq1")
    ldbc_parser.add_argument("--scale", type=int, default=200, help="number of persons")
    ldbc_parser.add_argument("--seed", type=int, default=42)
    ldbc_parser.add_argument("--person", type=int, default=None, help="person id parameter")
    ldbc_parser.add_argument("--show-rows", type=int, default=0)
    ldbc_parser.add_argument("--no-optimize", action="store_true")
    ldbc_parser.add_argument(
        "--store",
        default=None,
        metavar="memory|sqlite[:PATH]",
        help="fact-store backend for the Datalog engine "
        "(default: $REPRO_STORE or memory)",
    )
    ldbc_parser.add_argument(
        "--executor",
        choices=["interpreted", "compiled", "columnar"],
        default=None,
        help="plan executor for the Datalog engine "
        "(default: $REPRO_EXECUTOR or compiled)",
    )
    ldbc_parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="run the query N times through one persistent session with "
        "per-run parameter bindings (the warm serving path); prints "
        "per-run timings and the once-only ingest/plan counters",
    )
    ldbc_parser.add_argument(
        "--explain",
        action="store_true",
        help="run only the Datalog engine and print its plan report "
        "(join orders, cost estimates, re-plan counters)",
    )
    ldbc_parser.set_defaults(func=_cmd_ldbc)

    serve_parser = subparsers.add_parser(
        "serve",
        help="serve the LDBC statements over the JSON prepared-statement protocol",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=7431)
    serve_parser.add_argument(
        "--workers", type=int, default=4, help="serving pool worker sessions"
    )
    serve_parser.add_argument(
        "--tick",
        type=float,
        default=0.0,
        help="also flush subscription notifications every TICK seconds "
        "(0 = mutation-driven only)",
    )
    serve_parser.add_argument("--scale", type=int, default=100, help="number of persons")
    serve_parser.add_argument("--seed", type=int, default=42)
    serve_parser.add_argument(
        "--store",
        default=None,
        metavar="memory|sqlite[:PATH]",
        help="fact-store backend shared by the pool "
        "(default: $REPRO_STORE or memory)",
    )
    serve_parser.add_argument(
        "--executor",
        choices=["interpreted", "compiled", "columnar"],
        default=None,
        help="plan executor shared by the pool workers "
        "(default: $REPRO_EXECUTOR or compiled)",
    )
    serve_parser.set_defaults(func=_cmd_serve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
