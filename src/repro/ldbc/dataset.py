"""Load one generated SNB dataset into every execution engine.

:func:`load_dataset` materialises a :class:`~repro.ldbc.generator.SNBDataset`
into the shapes the four engines consume:

* the raw fact dictionary (Datalog engine),
* a relational :class:`~repro.engines.relational.table.Database`,
* a :class:`~repro.engines.graph.store.PropertyGraph`,
* a loaded :class:`~repro.engines.sqlite_exec.SQLiteExecutor`.

Loading is lazy per engine so that benchmarks only pay for the engines they
actually use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.engines.graph.loader import facts_to_property_graph
from repro.engines.graph.store import PropertyGraph
from repro.engines.relational.table import Database
from repro.engines.sqlite_exec import SQLiteExecutor
from repro.ldbc.generator import SNBDataset, generate_snb_dataset
from repro.ldbc.schema import snb_schema_mapping
from repro.schema.translate import SchemaMapping


@dataclass
class LoadedDataset:
    """A generated dataset plus lazily-built per-engine materialisations."""

    dataset: SNBDataset
    mapping: SchemaMapping
    _database: Optional[Database] = field(default=None, repr=False)
    _graph: Optional[PropertyGraph] = field(default=None, repr=False)
    _sqlite: Optional[SQLiteExecutor] = field(default=None, repr=False)

    @property
    def facts(self) -> Dict[str, List[Tuple]]:
        """Return the raw facts (the Datalog engine's input)."""
        return self.dataset.facts

    def relational_database(self) -> Database:
        """Return (building on first use) the relational engine database."""
        if self._database is None:
            database = Database()
            for relation in self.mapping.dl_schema.edb_relations():
                database.create_table(relation.name, relation.column_names())
                database.insert_many(relation.name, self.dataset.relation(relation.name))
            self._database = database
        return self._database

    def property_graph(self) -> PropertyGraph:
        """Return (building on first use) the property graph."""
        if self._graph is None:
            self._graph = facts_to_property_graph(self.dataset.facts, self.mapping)
        return self._graph

    def sqlite_executor(self) -> SQLiteExecutor:
        """Return (building on first use) a loaded, indexed SQLite executor."""
        if self._sqlite is None:
            executor = SQLiteExecutor(self.mapping.dl_schema, self.dataset.facts)
            executor.create_indexes()
            self._sqlite = executor
        return self._sqlite

    def close(self) -> None:
        """Release the SQLite connection if one was opened."""
        if self._sqlite is not None:
            self._sqlite.close()
            self._sqlite = None


def load_dataset(scale_persons: int = 200, seed: int = 42) -> LoadedDataset:
    """Generate an SNB dataset and wrap it for multi-engine loading."""
    dataset = generate_snb_dataset(scale_persons=scale_persons, seed=seed)
    return LoadedDataset(dataset=dataset, mapping=snb_schema_mapping())
