"""LDBC Social Network Benchmark (SNB) substrate.

The paper evaluates Raqlet on the LDBC SNB interactive workload (SF10).  The
official datasets and data generator are not available offline, so this
package provides:

* :mod:`repro.ldbc.schema` -- an SNB-shaped PG-Schema (Person, City, Country,
  Tag, Forum, Message node types and the interactive-workload edge types),
* :mod:`repro.ldbc.generator` -- a deterministic synthetic data generator
  parameterised by a scale knob, producing facts keyed by DL-Schema relation
  names (so every engine sees the same data),
* :mod:`repro.ldbc.queries` -- the Cypher text of the queries used in the
  paper's Table 1 (short query 1, complex query 2) plus recursion-exercising
  extras (friend reachability, friends-of-friends, shortest path),
* :mod:`repro.ldbc.dataset` -- loaders that materialise one generated dataset
  into every execution engine.
"""

from repro.ldbc.schema import snb_pg_schema, snb_schema_mapping
from repro.ldbc.generator import SNBDataset, generate_snb_dataset
from repro.ldbc.queries import (
    COMPLEX_QUERY_2,
    FRIENDS_OF_FRIENDS,
    FRIEND_REACHABILITY,
    SHORT_QUERY_1,
    SHORTEST_PATH_QUERY,
    complex_query_2,
    short_query_1,
)
from repro.ldbc.dataset import LoadedDataset, load_dataset

__all__ = [
    "snb_pg_schema",
    "snb_schema_mapping",
    "SNBDataset",
    "generate_snb_dataset",
    "SHORT_QUERY_1",
    "COMPLEX_QUERY_2",
    "FRIEND_REACHABILITY",
    "FRIENDS_OF_FRIENDS",
    "SHORTEST_PATH_QUERY",
    "short_query_1",
    "complex_query_2",
    "LoadedDataset",
    "load_dataset",
]
