"""Deterministic synthetic SNB data generator.

The official LDBC data generator (and its SF10 output) is not available
offline, so this module produces an SNB-shaped dataset with the structural
features the reproduced queries care about:

* a skewed ``knows`` friendship graph (preferential attachment) so that
  2-hop and reachability queries have non-trivial fan-out,
* every person located in a city, cities grouped into countries,
* a per-person stream of messages with creation dates, so date-filtered
  queries (complex query 2) select a meaningful subset,
* tags, forums, likes and reply edges to fill out the interactive schema.

The generator is fully deterministic for a given ``(scale_persons, seed)``
pair; every engine loads exactly the same facts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

FIRST_NAMES = [
    "Jan", "Maria", "Chen", "Amir", "Youning", "Meisam", "Jazal", "Anna",
    "Carlos", "Wei", "Otto", "Ines", "Rahul", "Yuki", "Lena", "Omar",
    "Priya", "Ivan", "Sara", "Mohamed", "Elena", "Jack", "Aisha", "Bruno",
]
LAST_NAMES = [
    "Smith", "Mueller", "Zhang", "Shaikhha", "Xia", "Tarabkhah", "Saleem",
    "Herlihy", "Garcia", "Wang", "Schmidt", "Silva", "Kumar", "Tanaka",
    "Novak", "Hassan", "Patel", "Petrov", "Johansson", "Ali", "Rossi",
    "Brown", "Diallo", "Costa",
]
CITY_NAMES = [
    "Edinburgh", "Lausanne", "Berlin", "Beijing", "Delhi", "Tokyo", "Lima",
    "Nairobi", "Toronto", "Sydney", "Oslo", "Porto", "Kyiv", "Seoul",
    "Austin", "Zurich", "Glasgow", "Tehran", "Lahore", "Bogota",
]
COUNTRY_NAMES = [
    "United Kingdom", "Switzerland", "Germany", "China", "India", "Japan",
    "Peru", "Kenya", "Canada", "Australia",
]
TAG_NAMES = [
    "datalog", "graphs", "recursion", "databases", "compilers", "sql",
    "cypher", "semantics", "optimization", "benchmarks", "networks",
    "program-analysis", "knowledge-graphs", "fixpoints", "joins", "queries",
]
BROWSERS = ["Firefox", "Chrome", "Safari", "Edge"]

#: Milliseconds-style epoch base used for creationDate properties.
BASE_DATE = 1_262_304_000_000  # 2010-01-01
DAY = 86_400_000


@dataclass
class SNBDataset:
    """A generated dataset: facts keyed by DL-Schema relation name."""

    scale_persons: int
    seed: int
    facts: Dict[str, List[Tuple]] = field(default_factory=dict)
    person_ids: List[int] = field(default_factory=list)
    message_date_range: Tuple[int, int] = (BASE_DATE, BASE_DATE)

    def relation(self, name: str) -> List[Tuple]:
        """Return the facts of ``name`` (empty list when absent)."""
        return self.facts.get(name, [])

    def fact_count(self) -> int:
        """Return the total number of facts across all relations."""
        return sum(len(rows) for rows in self.facts.values())

    def median_message_date(self) -> int:
        """Return a date splitting the message stream roughly in half.

        Used as the ``maxDate`` parameter of complex query 2 so the filter
        keeps a meaningful subset.
        """
        low, high = self.message_date_range
        return (low + high) // 2

    def default_person_id(self) -> int:
        """Return a deterministic person id with a non-trivial neighbourhood.

        The generator wires the preferential-attachment hubs to the earliest
        ids, so the first person is a good default query parameter.
        """
        return self.person_ids[0] if self.person_ids else 0


def _person_rows(count: int, rng: random.Random, city_ids: List[int]) -> Tuple[List[Tuple], List[Tuple]]:
    persons: List[Tuple] = []
    located: List[Tuple] = []
    for index in range(count):
        person_id = index + 1
        first = FIRST_NAMES[rng.randrange(len(FIRST_NAMES))]
        last = LAST_NAMES[rng.randrange(len(LAST_NAMES))]
        gender = "female" if rng.random() < 0.5 else "male"
        birthday = BASE_DATE - rng.randrange(18 * 365, 60 * 365) * DAY
        creation = BASE_DATE + rng.randrange(0, 365 * 3) * DAY
        ip = f"10.{rng.randrange(256)}.{rng.randrange(256)}.{rng.randrange(256)}"
        browser = BROWSERS[rng.randrange(len(BROWSERS))]
        persons.append(
            (person_id, first, last, gender, birthday, creation, ip, browser)
        )
        city = city_ids[rng.randrange(len(city_ids))]
        located.append((person_id, city, 100_000 + person_id))
    return persons, located


def _knows_rows(person_ids: List[int], rng: random.Random, average_degree: int) -> List[Tuple]:
    """Generate a skewed friendship graph via preferential attachment."""
    edges: List[Tuple] = []
    seen = set()
    targets: List[int] = []
    edge_id = 200_000
    for person in person_ids:
        # Connect each new person to a few existing ones, preferring people
        # who already have many connections (the `targets` multiset).
        attachments = max(1, min(average_degree, len(targets) or 1))
        draws = rng.randrange(1, attachments + 1)
        for _ in range(draws):
            if targets and rng.random() < 0.8:
                other = targets[rng.randrange(len(targets))]
            else:
                other = person_ids[rng.randrange(len(person_ids))]
            if other == person:
                continue
            key = (min(person, other), max(person, other))
            if key in seen:
                continue
            seen.add(key)
            edge_id += 1
            creation = BASE_DATE + rng.randrange(0, 365 * 3) * DAY
            edges.append((key[0], key[1], edge_id, creation))
            targets.extend([person, other])
    return edges


def generate_snb_dataset(scale_persons: int = 200, seed: int = 42) -> SNBDataset:
    """Generate a deterministic SNB-shaped dataset.

    ``scale_persons`` plays the role of the LDBC scale factor: messages,
    forums and edges scale linearly with it.
    """
    rng = random.Random(seed)
    dataset = SNBDataset(scale_persons=scale_persons, seed=seed)
    facts = dataset.facts

    country_count = min(len(COUNTRY_NAMES), max(3, scale_persons // 60))
    city_count = min(len(CITY_NAMES), max(5, scale_persons // 20))
    tag_count = min(len(TAG_NAMES), max(6, scale_persons // 25))
    forum_count = max(3, scale_persons // 10)

    country_ids = [10_000 + index for index in range(country_count)]
    facts["Country"] = [
        (country_id, COUNTRY_NAMES[index % len(COUNTRY_NAMES)])
        for index, country_id in enumerate(country_ids)
    ]
    city_ids = [20_000 + index for index in range(city_count)]
    facts["City"] = [
        (city_id, CITY_NAMES[index % len(CITY_NAMES)])
        for index, city_id in enumerate(city_ids)
    ]
    facts["City_IS_PART_OF_Country"] = [
        (city_id, country_ids[index % len(country_ids)], 300_000 + index)
        for index, city_id in enumerate(city_ids)
    ]
    tag_ids = [30_000 + index for index in range(tag_count)]
    facts["Tag"] = [
        (tag_id, TAG_NAMES[index % len(TAG_NAMES)])
        for index, tag_id in enumerate(tag_ids)
    ]

    persons, located = _person_rows(scale_persons, rng, city_ids)
    facts["Person"] = persons
    facts["Person_IS_LOCATED_IN_City"] = located
    person_ids = [row[0] for row in persons]
    dataset.person_ids = person_ids

    facts["Person_KNOWS_Person"] = _knows_rows(person_ids, rng, average_degree=6)

    facts["Person_HAS_INTEREST_Tag"] = [
        (person, tag_ids[rng.randrange(len(tag_ids))], 400_000 + index)
        for index, person in enumerate(person_ids)
        for _ in range(rng.randrange(1, 4))
    ]

    forum_ids = [40_000 + index for index in range(forum_count)]
    facts["Forum"] = [
        (forum_id, f"Forum {index}", BASE_DATE + index * DAY)
        for index, forum_id in enumerate(forum_ids)
    ]
    facts["Forum_HAS_MODERATOR_Person"] = [
        (forum_id, person_ids[rng.randrange(len(person_ids))], 500_000 + index)
        for index, forum_id in enumerate(forum_ids)
    ]
    facts["Forum_HAS_MEMBER_Person"] = [
        (forum_ids[rng.randrange(len(forum_ids))], person, 510_000 + index, BASE_DATE + rng.randrange(0, 900) * DAY)
        for index, person in enumerate(person_ids)
        for _ in range(rng.randrange(1, 3))
    ]

    # Messages: a per-person stream with dates spread over ~3 years.
    messages: List[Tuple] = []
    has_creator: List[Tuple] = []
    container_of: List[Tuple] = []
    has_tag: List[Tuple] = []
    likes: List[Tuple] = []
    reply_of: List[Tuple] = []
    message_id = 1_000_000
    min_date = None
    max_date = None
    messages_per_person = 8
    for person in person_ids:
        for _ in range(rng.randrange(messages_per_person // 2, messages_per_person + 1)):
            message_id += 1
            creation = BASE_DATE + rng.randrange(0, 365 * 3) * DAY + rng.randrange(0, DAY)
            min_date = creation if min_date is None else min(min_date, creation)
            max_date = creation if max_date is None else max(max_date, creation)
            content = f"message {message_id} about {TAG_NAMES[rng.randrange(len(TAG_NAMES))]}"
            messages.append((message_id, content, creation, len(content)))
            has_creator.append((message_id, person, 600_000 + message_id))
            container_of.append(
                (forum_ids[rng.randrange(len(forum_ids))], message_id, 610_000 + message_id)
            )
            has_tag.append(
                (message_id, tag_ids[rng.randrange(len(tag_ids))], 620_000 + message_id)
            )
            if rng.random() < 0.4:
                liker = person_ids[rng.randrange(len(person_ids))]
                likes.append((liker, message_id, 630_000 + message_id, creation + DAY))
            if rng.random() < 0.3 and len(messages) > 1:
                parent = messages[rng.randrange(len(messages) - 1)][0]
                reply_of.append((message_id, parent, 640_000 + message_id))
    facts["Message"] = messages
    facts["Message_HAS_CREATOR_Person"] = has_creator
    facts["Forum_CONTAINER_OF_Message"] = container_of
    facts["Message_HAS_TAG_Tag"] = has_tag
    facts["Person_LIKES_Message"] = likes
    facts["Message_REPLY_OF_Message"] = reply_of
    dataset.message_date_range = (min_date or BASE_DATE, max_date or BASE_DATE)
    return dataset
