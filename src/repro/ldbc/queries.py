"""Cypher text of the LDBC SNB queries used in the paper's evaluation.

Following the paper's normalisation (Section 3), ``ORDER BY`` and ``LIMIT``
are omitted and ``RETURN DISTINCT`` is used so that the translated queries
are set-semantics-equivalent across all backends.

* :data:`SHORT_QUERY_1` -- interactive short query 1 (IS1), in the simplified
  form of the paper's running example (Figure 3a) extended with the remaining
  IS1 projection columns.
* :data:`COMPLEX_QUERY_2` -- interactive complex query 2 (IC2): recent
  messages of a person's friends before a date.
* :data:`FRIEND_REACHABILITY`, :data:`FRIENDS_OF_FRIENDS`,
  :data:`SHORTEST_PATH_QUERY` -- recursion-exercising companions used by the
  additional microbenchmarks (transitive closure over ``knows``, bounded
  2-hop expansion, and an IC13-style shortest path length).
"""

from __future__ import annotations

#: The running example of the paper (Figure 3a): person 42's first name and city.
RUNNING_EXAMPLE = """
MATCH (n:Person {id: 42})-[:IS_LOCATED_IN]->(p:City)
RETURN DISTINCT n.firstName AS firstName, p.id AS cityId
"""

#: IS1: profile of a person (simplified per the paper: DISTINCT, no ORDER BY).
SHORT_QUERY_1 = """
MATCH (n:Person {id: $personId})-[:IS_LOCATED_IN]->(p:City)
RETURN DISTINCT
  n.firstName AS firstName,
  n.lastName AS lastName,
  n.birthday AS birthday,
  n.locationIP AS locationIP,
  n.browserUsed AS browserUsed,
  p.id AS cityId,
  n.gender AS gender,
  n.creationDate AS creationDate
"""

#: IC2: recent messages by friends, filtered by a maximum creation date.
COMPLEX_QUERY_2 = """
MATCH (p:Person {id: $personId})-[:KNOWS]-(friend:Person)<-[:HAS_CREATOR]-(message:Message)
WHERE message.creationDate <= $maxDate
RETURN DISTINCT
  friend.id AS personId,
  friend.firstName AS personFirstName,
  friend.lastName AS personLastName,
  message.id AS messageId,
  message.content AS messageContent,
  message.creationDate AS messageCreationDate
"""

#: Unbounded transitive closure over the friendship graph from one person.
FRIEND_REACHABILITY = """
MATCH (p:Person {id: $personId})-[:KNOWS*]-(friend:Person)
RETURN DISTINCT friend.id AS friendId
"""

#: Friends and friends-of-friends (bounded variable-length pattern).
FRIENDS_OF_FRIENDS = """
MATCH (p:Person {id: $personId})-[:KNOWS*1..2]-(friend:Person)
WHERE friend.id <> $personId
RETURN DISTINCT friend.id AS friendId, friend.firstName AS firstName
"""

#: IC13-style shortest path length between two people over KNOWS.
SHORTEST_PATH_QUERY = """
MATCH path = shortestPath((a:Person {id: $person1Id})-[:KNOWS*]-(b:Person {id: $person2Id}))
RETURN DISTINCT length(path) AS shortestPathLength
"""


def short_query_1(person_id: int) -> dict:
    """Return the (query text, parameters) pair for IS1."""
    return {"query": SHORT_QUERY_1, "parameters": {"personId": person_id}}


def complex_query_2(person_id: int, max_date: int) -> dict:
    """Return the (query text, parameters) pair for IC2."""
    return {
        "query": COMPLEX_QUERY_2,
        "parameters": {"personId": person_id, "maxDate": max_date},
    }


def friend_reachability(person_id: int) -> dict:
    """Return the (query text, parameters) pair for the reachability query."""
    return {"query": FRIEND_REACHABILITY, "parameters": {"personId": person_id}}


def friends_of_friends(person_id: int) -> dict:
    """Return the (query text, parameters) pair for the 2-hop expansion."""
    return {"query": FRIENDS_OF_FRIENDS, "parameters": {"personId": person_id}}


def shortest_path_query(person1_id: int, person2_id: int) -> dict:
    """Return the (query text, parameters) pair for the IC13-style query."""
    return {
        "query": SHORTEST_PATH_QUERY,
        "parameters": {"person1Id": person1_id, "person2Id": person2_id},
    }
