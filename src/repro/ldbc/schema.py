"""The SNB-shaped property-graph schema used by the reproduction.

The schema follows the LDBC SNB interactive schema with one simplification:
``Post`` and ``Comment`` are merged into a single ``Message`` node type (the
LDBC specification itself treats them as subtypes of Message, and the queries
reproduced here only access Message-level properties).
"""

from __future__ import annotations

from functools import lru_cache

from repro.schema.pg_schema import PGSchema
from repro.schema.translate import SchemaMapping, pg_to_dl_schema

#: PG-Schema text of the SNB subset, in the paper's ``CREATE GRAPH`` syntax.
SNB_PG_SCHEMA_TEXT = """
CREATE GRAPH {
  (personType : Person {
     id INT, firstName STRING, lastName STRING, gender STRING,
     birthday INT, creationDate INT, locationIP STRING, browserUsed STRING
  }),
  (cityType : City { id INT, name STRING }),
  (countryType : Country { id INT, name STRING }),
  (tagType : Tag { id INT, name STRING }),
  (forumType : Forum { id INT, title STRING, creationDate INT }),
  (messageType : Message { id INT, content STRING, creationDate INT, length INT }),
  (:personType)-[knowsType : knows { id INT, creationDate INT }]->(:personType),
  (:personType)-[personLocationType : isLocatedIn { id INT }]->(:cityType),
  (:cityType)-[cityPartType : isPartOf { id INT }]->(:countryType),
  (:personType)-[interestType : hasInterest { id INT }]->(:tagType),
  (:messageType)-[creatorType : hasCreator { id INT }]->(:personType),
  (:messageType)-[messageTagType : hasTag { id INT }]->(:tagType),
  (:personType)-[likesType : likes { id INT, creationDate INT }]->(:messageType),
  (:forumType)-[memberType : hasMember { id INT, joinDate INT }]->(:personType),
  (:forumType)-[moderatorType : hasModerator { id INT }]->(:personType),
  (:forumType)-[containerType : containerOf { id INT }]->(:messageType),
  (:messageType)-[replyType : replyOf { id INT }]->(:messageType)
}
"""


@lru_cache(maxsize=1)
def snb_pg_schema() -> PGSchema:
    """Return the SNB PG-Schema (parsed once and cached)."""
    from repro.schema.pg_parser import parse_pg_schema

    return parse_pg_schema(SNB_PG_SCHEMA_TEXT)


@lru_cache(maxsize=1)
def snb_schema_mapping() -> SchemaMapping:
    """Return the DL-Schema mapping of the SNB schema (cached)."""
    return pg_to_dl_schema(snb_pg_schema())
