"""Persistent graph sessions: compile once, bind per request, keep the store hot.

The one-shot API (``Raqlet.run_on_datalog_engine``) rebuilds the world on
every call: a fresh :class:`~repro.engines.datalog.engine.DatalogEngine`,
a full EDB re-ingest, index builds, statistics accumulation and plan
compilation — acceptable for a compiler demo, fatal for a serving system
answering millions of requests against one graph.  A :class:`Session` is the
embedded-database-style alternative (cf. SQLite's prepared statements,
Soufflé's separation of program compilation from fact loading):

* the session owns **one** :class:`~repro.engines.datalog.storage.StoreBackend`
  whose EDB ingest, incremental indexes and statistics registry are paid
  once and shared by every query;
* :meth:`Session.prepare` compiles a query whose ``$name`` parameters stay
  **late-bound** (:class:`~repro.dlir.core.Param` placeholders survive down
  to the emitted Soufflé/SQL), returning a :class:`PreparedQuery`;
* ``prepared.run(personId=42)`` substitutes the binding at execution time,
  so :class:`~repro.engines.datalog.planner.PlanCache` entries, compiled
  closures and relation statistics are reused across calls with different
  arguments — a warm run performs **zero** fact re-ingest, **zero** index
  rebuilds and **zero** plan recompiles;
* :meth:`Session.insert` / :meth:`Session.retract` mutate the shared EDB and
  log the *effective* per-row delta; on its next run each prepared query
  folds the rows logged since its last derivation and hands them to the
  engine's incremental maintainer (:mod:`repro.engines.datalog.ivm`), so
  mutation cost scales with |Δ|, not |IDB| — programs the maintainer cannot
  handle fall back transparently to mark-dirty + full re-derivation.

The lifecycle::

    session = raqlet.session(facts)            # ingest once
    prepared = session.prepare(cypher)         # compile once ($params stay)
    prepared.run(personId=42)                  # bind + derive
    prepared.run(personId=99)                  # warm: reuse plans/indexes
    session.insert("Person_KNOWS_Person", [(42, 99, 7)])
    prepared.run(personId=42)                  # dirty -> lazily re-derived
"""

from __future__ import annotations

import re
import time
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.common.errors import RaqletError, UnsupportedFeatureError
from repro.dlir import (
    DLIRProgram,
    bind_parameters,
    program_param_names,
    rename_relations,
)
from repro.engines.datalog.engine import DatalogEngine
from repro.engines.datalog.executor_compiled import (
    ExecutorSpec,
    RuleExecutor,
    create_executor,
)
from repro.engines.datalog.storage import StoreBackend, StoreSpec, create_store
from repro.engines.result import QueryResult

FactsInput = Mapping[str, Iterable[Tuple]]
ParamValues = Mapping[str, object]

#: a delta-log entry: ``(relation, row, +1 | -1)``; the sentinel
#: ``_BULK_MUTATION`` marks a bulk ingest whose per-row delta was not
#: tracked, forcing consumers behind it onto the full re-derivation path
_BULK_MUTATION: Tuple[Optional[str], Optional[Tuple], int] = (None, None, 0)

#: delta-log length beyond which fully-consumed prefixes are compacted
_DELTA_LOG_COMPACT_THRESHOLD = 256

#: engines :meth:`Session.execute` can route to ("auto" picks the Datalog
#: engine, the only backend whose capability check never rejects a query)
EXECUTION_ENGINES = ("auto", "datalog", "relational", "sqlite", "graph")


def resolve_execution_options(
    store: StoreSpec = None,
    executor: ExecutorSpec = None,
    *,
    maintain_indexes: bool = True,
) -> Tuple[StoreBackend, RuleExecutor]:
    """Resolve store/executor specifications in **one** place.

    ``None`` always falls through to the ``REPRO_STORE`` / ``REPRO_EXECUTOR``
    environment variables (then the defaults) — both :class:`Session` and the
    one-shot ``Raqlet.run_*`` entry points route through here, so no caller
    can accidentally shadow the environment resolution by forwarding an
    explicit ``None``.
    """
    return (
        create_store(store, maintain_indexes=maintain_indexes),
        create_executor(executor),
    )


def detect_query_language(text: str) -> str:
    """Guess whether ``text`` is Datalog or Cypher.

    Datalog is recognised by its syntax anchors — a rule turnstile
    following an atom's closing parenthesis (so a ``":-"`` inside a Cypher
    string literal does not misroute), or a ``.decl`` / ``.input`` /
    ``.output`` directive.  Everything else is treated as Cypher; pass
    ``language=`` to :meth:`Session.prepare` to override.
    """
    stripped = text.strip()
    if re.search(r"\)\s*:-", stripped):
        return "datalog"
    if any(
        line.strip().startswith((".decl", ".input", ".output"))
        for line in stripped.splitlines()
    ):
        return "datalog"
    return "cypher"


class PreparedQuery:
    """A compiled query bound to a session, executable with per-run parameters.

    The prepared query owns one long-lived
    :class:`~repro.engines.datalog.engine.DatalogEngine` over the session's
    shared store.  The first :meth:`run` derives the result; later runs with
    a different binding (or after a session mutation) clear only the derived
    relations (:meth:`DatalogEngine.reset`) and re-derive against the still
    hot EDB, indexes, statistics, plan cache and compiled closures.
    """

    def __init__(
        self,
        session: "Session",
        compiled,  # repro.pipeline.CompiledQuery
        optimized: bool = True,
    ) -> None:
        self._session = session
        self.compiled = compiled
        self._optimized = optimized
        program: DLIRProgram = compiled.program(optimized)
        # Generated IDB names ("Return", "Match1", magic predicates, ...)
        # repeat across queries — and may even repeat with different
        # arities, which a table-per-relation backend cannot absorb.  Each
        # prepared query therefore derives into a private namespace on the
        # shared store; the EDB names are untouched.
        suffix = session._next_namespace()
        self.namespace: Dict[str, str] = {
            name: f"{name}{suffix}" for name in program.idb_names()
        }
        # The *original* names are recorded too, so mutation guards can
        # reject inserts that would silently miss the renamed relation.
        session._derived_originals.update(self.namespace)
        self._program = rename_relations(program, self.namespace)
        #: parameter names the program leaves late-bound
        self.param_names: Tuple[str, ...] = tuple(
            program_param_names(self._program)
        )
        # A relation can have both rules and externally supplied seed rows
        # (Datalog programs routinely do).  Session facts ingested under
        # the *original* name of a renamed derived relation must seed the
        # renamed relation, or they would be invisible to the query.
        seed_facts: Dict[str, List[Tuple]] = {}
        for original, renamed in self.namespace.items():
            rows = session.store.scan(original)
            if rows:
                seed_facts[renamed] = [tuple(row) for row in rows]
        # The engine is built eagerly: program validation errors surface at
        # prepare() time (like the one-shot API), and the engine's one-off
        # costs (program fact ingest, subsumption specs) are paid here, not
        # on the first request.  Seed rows on derived relations survive
        # warm resets (the engine re-adds them after clearing its IDB).
        self._engine = DatalogEngine(
            self._program,
            seed_facts or None,
            store=session.store,
            executor=session.executor,
            **session.engine_options,
        )
        self._idb_relations = frozenset(self._program.idb_names())
        #: the (namespaced) relation :meth:`run` returns rows of — the one
        #: whose delta :meth:`sync` and subscriptions report
        outputs = self._program.outputs
        self._output_relation: Optional[str] = outputs[0] if outputs else None
        #: when True, cold re-derivations go through ``engine.rederive()``
        #: (snapshot + diff) so :meth:`sync` never loses a delta; plain
        #: queries keep the cheaper reset()+run() path.  Flipped on by the
        #: first :meth:`sync` call and by the reactive subscription layer.
        self._track_deltas = False
        self._derived = False
        self._last_params: Optional[Dict[str, object]] = None
        self._mutation_epoch = -1
        #: position in the session's delta log up to which this query's
        #: derivation is current (``None`` until the first derivation)
        self._delta_pos: Optional[int] = None
        session._register_prepared(self)
        #: wall-clock seconds of the most recent :meth:`run`
        self.last_run_seconds = 0.0

    # -- introspection -----------------------------------------------------

    @property
    def engine(self) -> DatalogEngine:
        """Return the long-lived Datalog engine (counters, ``explain()``)."""
        return self._engine

    @property
    def idb_relations(self) -> frozenset:
        """Return the derived relations this query writes into the store."""
        return self._idb_relations

    def explain(
        self, parameters: Optional[ParamValues] = None, **bindings: object
    ) -> str:
        """Run with the given binding and render the engine's plan report.

        Without arguments the most recent binding is reused (a
        parameterised query that has never run needs one, exactly like
        :meth:`run`).
        """
        if parameters is None and not bindings and self._last_params is not None:
            self.run(self._last_params)
        else:
            self.run(parameters, **bindings)
        return self._engine.explain()

    # -- execution ---------------------------------------------------------

    def _resolve_params(
        self, parameters: Optional[ParamValues], bindings: Mapping[str, object]
    ) -> Dict[str, object]:
        inlined = self.compiled.parameters
        supplied: Dict[str, object] = dict(parameters or {})
        supplied.update(bindings)
        # A binding for a parameter that is *not* late-bound would be
        # silently ignored — and if the query was compiled with the value
        # inlined, the caller would get the old binding's rows back as if
        # they were the answer.  Reject anything but a re-statement of the
        # inlined value.
        for name, value in supplied.items():
            if name in self.param_names:
                continue
            if name in inlined:
                if inlined[name] != value:
                    raise RaqletError(
                        f"query parameter ${name} was inlined at compile "
                        f"time with value {inlined[name]!r}; prepare the "
                        "query without compile-time parameters to bind it "
                        "per run"
                    )
                continue
            raise RaqletError(
                f"unknown query parameter ${name}"
                + (
                    " (late-bound parameters: "
                    + ", ".join(f"${p}" for p in self.param_names)
                    + ")"
                    if self.param_names
                    else " (this query has no late-bound parameters)"
                )
            )
        params: Dict[str, object] = dict(inlined)
        params.update(supplied)
        missing = [name for name in self.param_names if name not in params]
        if missing:
            raise RaqletError(
                "missing value(s) for query parameter(s): "
                + ", ".join(f"${name}" for name in sorted(missing))
            )
        return params

    def _is_warm(self, params: Dict[str, object]) -> bool:
        """Whether the previous derivation is still valid for ``params``.

        Thanks to the per-query IDB namespace no other query can touch the
        derived relations, so staleness reduces to two signals: the binding
        and the session's mutation epoch.
        """
        return (
            self._derived
            and self._last_params == params
            and self._mutation_epoch == self._session.mutation_epoch
        )

    def run(
        self,
        parameters: Optional[ParamValues] = None,
        **bindings: object,
    ) -> QueryResult:
        """Execute with the given parameter binding and return the result.

        Bindings may be passed as a mapping, as keyword arguments, or both
        (keywords win).  A repeat run with the same binding and no
        intervening mutation returns the already-derived result; any other
        run resets only the derived relations and re-derives warm.
        """
        params = self._resolve_params(parameters, bindings)
        started = time.perf_counter()
        self._refresh(params)
        result = self._engine.query()
        self.last_run_seconds = time.perf_counter() - started
        return result

    def sync(
        self,
        parameters: Optional[ParamValues] = None,
        **bindings: object,
    ) -> Tuple[List[Tuple], List[Tuple]]:
        """Bring the derivation current and return the ``(added, removed)``
        rows of the query's output relation since the previous derivation.

        The standing-query primitive: unlike :meth:`run` it does **not**
        enumerate the result — the delta is read off the engine's
        :class:`~repro.engines.datalog.ivm.MaintenanceReport`, so a warm
        no-op costs nothing and a mutation costs O(|Δ|).  The first call
        after preparation reports the full initial result as added.  Calling
        ``sync`` enrols the query in delta tracking: later cold
        re-derivations (bulk ingests, parameter rebinds, maintenance
        fallbacks) snapshot-and-diff instead of silently resetting, so no
        delta is ever lost between calls.
        """
        params = self._resolve_params(parameters, bindings)
        self._track_deltas = True
        report = self._refresh(params)
        output = self._output_relation
        if report is None or output is None:
            return [], []
        added, removed = report.relation_delta(output)
        key = lambda row: tuple(str(value) for value in row)  # noqa: E731
        return sorted(added, key=key), sorted(removed, key=key)

    def _refresh(self, params: Dict[str, object]):
        """Bring the derivation current for ``params``.

        Returns the :class:`~repro.engines.datalog.ivm.MaintenanceReport`
        describing what changed, or ``None`` on the warm no-op path (the
        previous derivation is still exact).
        """
        if self._is_warm(params):
            return None
        report = self._maintain_incrementally(params)
        if report is None:
            # Mark-dirty + lazy re-derive: clear this query's (namespaced)
            # IDB relations and evaluate against the hot EDB.  This is the
            # cold path (first run, new binding, bulk ingest) — delta
            # trackers pay an extra snapshot/diff here so even cold paths
            # report exactly what changed.
            if self._track_deltas:
                # A re-derivation that replaces a still-current standing
                # derivation (bulk ingest, unmaintainable delta) is a
                # *fallback* and counts as one; a first derivation or a
                # binding change is simply the chosen cold path.
                fallback = self._derived and self._last_params == params
                report = self._engine.rederive(
                    parameters=params, fallback=fallback
                )
            else:
                self._engine.reset(parameters=params)
                self._engine.run()
            self._derived = True
            self._last_params = dict(params)
        self._mutation_epoch = self._session.mutation_epoch
        self._delta_pos = self._session._log_position()
        return report

    def _maintain_incrementally(self, params: Dict[str, object]):
        """Fold the EDB rows mutated since the last derivation into the
        engine's incremental maintainer.

        Only applicable when the previous derivation exists, used the same
        binding, and every mutation since is covered by the session's
        per-row delta log (a bulk :meth:`Session.ingest` is not).  Returns
        the engine's :class:`~repro.engines.datalog.ivm.MaintenanceReport`
        when the derived relations were brought current, ``None`` when the
        caller must take the cold path.
        """
        if not (
            self._session._ivm
            and self._derived
            and self._last_params == params
            and self._delta_pos is not None
        ):
            return None
        delta = self._session._fold_delta(self._delta_pos)
        if delta is None:
            return None
        added, removed = delta
        return self._engine.maintain(added, removed)


class Session:
    """A long-lived execution context over one graph.

    Constructed through :meth:`repro.pipeline.Raqlet.session`.  The session
    resolves the store and executor **once** (``None`` honours
    ``REPRO_STORE`` / ``REPRO_EXECUTOR``), ingests the extensional facts
    once, and shares both with every query prepared or executed in it.
    """

    def __init__(
        self,
        raqlet,  # repro.pipeline.Raqlet
        facts: Optional[FactsInput] = None,
        *,
        store: StoreSpec = None,
        executor: ExecutorSpec = None,
        namespace: Optional[str] = None,
        **engine_options,
    ) -> None:
        self._raqlet = raqlet
        #: optional label mixed into every prepared query's IDB-namespace
        #: suffix, so several sessions sharing one store (the serving
        #: pool's workers over a shared EDB) can never collide on derived
        #: relation names
        self._namespace_label = namespace
        # A caller-supplied StoreBackend instance stays under the caller's
        # ownership; stores the session creates are closed by close().
        self._owns_store = not isinstance(store, StoreBackend)
        maintain_indexes = engine_options.get("incremental_indexes", True)
        self._store, self._executor = resolve_execution_options(
            store, executor, maintain_indexes=maintain_indexes
        )
        #: extra options forwarded to every prepared query's DatalogEngine
        #: (``replan_threshold``, ``reuse_plans``, ``incremental_indexes``,
        #: ``ivm``).  Sessions enable incremental view maintenance by
        #: default — pass ``ivm=False`` to force mark-dirty + re-derive.
        self.engine_options = dict(engine_options)
        self.engine_options.setdefault("ivm", True)
        self._ivm = bool(self.engine_options["ivm"])
        # Append-only log of effective EDB row mutations ``(relation, row,
        # ±1)``; each prepared query remembers the position its derivation
        # is current at and folds the suffix on its next run.  Consumed
        # prefixes are compacted away in _note_mutation().
        self._delta_log: List[Tuple[Optional[str], Optional[Tuple], int]] = []
        self._delta_log_offset = 0
        self._all_prepared: List[PreparedQuery] = []
        #: how many times the session ingested an EDB fact batch (the warm
        #: path asserts this stays at 1)
        self.ingest_count = 0
        #: bumped by every insert()/retract(); prepared queries compare it
        #: to decide whether their derived result is stale
        self.mutation_epoch = 0
        self._namespace_serial = 0
        #: pre-namespace names of relations derived by prepared queries
        self._derived_originals: set = set()
        self._prepared: Dict[Tuple[str, str, bool, bool], PreparedQuery] = {}
        # Lazily materialised secondary engines (invalidated on mutation).
        self._sqlite_executor = None
        self._relational_database = None
        self._property_graph = None
        # The reactive subsystem (standing queries, subscriptions, rules) —
        # materialised on first use so plain sessions pay nothing for it.
        self._reactive = None
        self._closed = False
        if facts:
            self.ingest(facts)

    # -- shared state ------------------------------------------------------

    @property
    def store(self) -> StoreBackend:
        """Return the session's shared fact store."""
        return self._store

    @property
    def executor(self) -> RuleExecutor:
        """Return the session's shared rule executor (and closure cache)."""
        return self._executor

    @property
    def raqlet(self):
        """Return the compiler this session compiles queries with."""
        return self._raqlet

    def _next_namespace(self) -> str:
        """Return a fresh IDB-namespace suffix for one prepared query."""
        self._namespace_serial += 1
        if self._namespace_label:
            return f"__{self._namespace_label}q{self._namespace_serial}"
        return f"__q{self._namespace_serial}"

    def ingest(self, facts: FactsInput) -> None:
        """Bulk-load extensional facts into the shared store (one batch).

        Like :meth:`insert`, an ingest is a mutation: every prepared
        query's derived result is marked stale and lazily re-derived on its
        next run.
        """
        self._check_open()
        for relation in facts:
            self._check_extensional(relation)
        self.ingest_count += 1
        with self._store.batch():
            for relation, rows in facts.items():
                self._store.add_many(relation, (tuple(row) for row in rows))
        # Bulk loads skip per-row delta tracking (that is what makes them
        # fast); the sentinel forces every consumer behind this point onto
        # the full re-derivation path once.
        self._delta_log.append(_BULK_MUTATION)
        self._note_mutation()

    # -- preparing and executing queries -----------------------------------

    def prepare(
        self,
        query,
        *,
        language: Optional[str] = None,
        optimize: bool = True,
        optimized: bool = True,
    ) -> PreparedQuery:
        """Compile ``query`` (Cypher text, Datalog text, or an existing
        :class:`~repro.pipeline.CompiledQuery`) into a :class:`PreparedQuery`.

        ``$name`` parameters are *not* inlined: they survive compilation as
        late-bound placeholders and are supplied per :meth:`PreparedQuery.run`.
        Text queries are cached, so preparing the same text twice returns
        the same prepared query (and its warm engine).
        """
        self._check_open()
        if not isinstance(query, str):
            return PreparedQuery(self, query, optimized)
        language = language or detect_query_language(query)
        key = (language, query, optimize, optimized)
        cached = self._prepared.get(key)
        if cached is not None:
            return cached
        if language == "cypher":
            compiled = self._raqlet.compile_cypher(query, optimize=optimize)
        elif language == "datalog":
            compiled = self._raqlet.compile_datalog(query, optimize=optimize)
        else:
            raise RaqletError(
                f"unknown query language {language!r} "
                "(expected 'cypher' or 'datalog')"
            )
        prepared = PreparedQuery(self, compiled, optimized)
        self._prepared[key] = prepared
        return prepared

    def execute(
        self,
        query,
        parameters: Optional[ParamValues] = None,
        *,
        engine: str = "auto",
        language: Optional[str] = None,
        **bindings: object,
    ) -> QueryResult:
        """Prepare (with caching) and run ``query`` on the chosen engine.

        ``engine`` is one of ``"auto"`` (the Datalog engine — the only
        backend that supports every analysed feature), ``"datalog"``,
        ``"relational"``, ``"sqlite"`` or ``"graph"``; the non-default
        engines are routed through the compiled query's
        ``backend_problems()`` capability check first.
        """
        self._check_open()
        if engine not in EXECUTION_ENGINES:
            raise RaqletError(
                f"unknown execution engine {engine!r} "
                f"(expected one of {', '.join(EXECUTION_ENGINES)})"
            )
        prepared = self.prepare(query, language=language)
        params = prepared._resolve_params(parameters, bindings)
        if engine in ("auto", "datalog"):
            return prepared.run(params)
        if engine == "relational":
            return self._execute_relational(prepared, params)
        if engine == "sqlite":
            return self._execute_sqlite(prepared, params)
        return self._execute_graph(prepared, params)

    # -- secondary engines -------------------------------------------------

    def _check_capability(self, prepared: PreparedQuery, backend: str) -> None:
        problems = prepared.compiled.backend_problems(backend)
        if problems:
            raise UnsupportedFeatureError("; ".join(problems), backend=backend)

    def _edb_facts(self) -> Dict[str, List[Tuple]]:
        """Materialise the session's current EDB from the shared store."""
        facts: Dict[str, List[Tuple]] = {}
        for relation in self._raqlet.dl_schema.edb_relations():
            rows = self._store.scan(relation.name)
            if rows:
                facts[relation.name] = [tuple(row) for row in rows]
        return facts

    def _execute_relational(
        self, prepared: PreparedQuery, params: Dict[str, object]
    ) -> QueryResult:
        from repro.engines.relational import Database, RelationalEngine
        from repro.sqir import translate_dlir_to_sqir

        self._check_capability(prepared, "relational-engine")
        if self._relational_database is None:
            database = Database()
            for relation in self._raqlet.dl_schema.edb_relations():
                database.create_table(relation.name, relation.column_names())
                database.insert_many(relation.name, self._store.scan(relation.name))
            self._relational_database = database
        # The in-repo relational engine has no runtime parameter binding:
        # substitute the values into the program and translate per run.
        bound = bind_parameters(prepared._program, params)
        return RelationalEngine(self._relational_database).execute(
            translate_dlir_to_sqir(bound)
        )

    def _execute_sqlite(
        self, prepared: PreparedQuery, params: Dict[str, object]
    ) -> QueryResult:
        from repro.engines.sqlite_exec import SQLiteExecutor

        self._check_capability(prepared, "sqlite")
        if self._sqlite_executor is None:
            executor = SQLiteExecutor(self._raqlet.dl_schema, self._edb_facts())
            executor.create_indexes()
            self._sqlite_executor = executor
        # The generated SQL keeps named ``:name`` placeholders; SQLite
        # binds them natively, so the SQL text is also reusable per run.
        sql = prepared.compiled.sql_text(prepared._optimized, dialect="sqlite")
        return self._sqlite_executor.execute_sql(sql, params)

    def _execute_graph(
        self, prepared: PreparedQuery, params: Dict[str, object]
    ) -> QueryResult:
        from repro.engines.graph import GraphEngine, facts_to_property_graph

        compiled = prepared.compiled
        if compiled.lowering is None:
            raise RaqletError("graph execution requires a Cypher input query")
        if self._property_graph is None:
            self._property_graph = facts_to_property_graph(
                self._edb_facts(), self._raqlet.mapping
            )
        # The graph interpreter evaluates PGIR directly; re-lower with the
        # binding inlined (compilation here is a few AST passes, not a plan
        # rebuild — the graph engine has no cached plans to preserve).
        bound = self._raqlet.compile_cypher(
            compiled.source_text, params, optimize=False
        )
        assert bound.lowering is not None
        return GraphEngine(self._property_graph).execute(bound.lowering)

    # -- mutation ----------------------------------------------------------

    def insert(self, relation: str, rows: Iterable[Tuple]) -> int:
        """Insert extensional facts; returns how many were new.

        Derived results are not touched here — each prepared query notices
        the bumped mutation epoch on its next run and folds the logged
        per-row delta into its engine's incremental maintainer (falling
        back to a full re-derivation when the program is unmaintainable).
        Already-present rows change nothing and are not logged: the delta
        log records *effective* mutations only.
        """
        self._check_open()
        self._check_extensional(relation)
        added = 0
        with self._store.batch():
            for row in rows:
                row = tuple(row)
                if self._store.add(relation, row):
                    added += 1
                    self._delta_log.append((relation, row, 1))
        self._note_mutation()
        return added

    def retract(self, relation: str, rows: Iterable[Tuple]) -> int:
        """Remove extensional facts; returns how many were present.

        Absent rows are ignored (and not logged).  Retracting a row that
        also supports a derived fact through a rule never over-deletes: the
        maintainer counts derivations per row (or re-derives, in recursive
        strata), so the derived fact survives as long as any support does.
        """
        self._check_open()
        self._check_extensional(relation)
        removed = 0
        with self._store.batch():
            for row in rows:
                row = tuple(row)
                if self._store.remove(relation, row):
                    removed += 1
                    self._delta_log.append((relation, row, -1))
        self._note_mutation()
        return removed

    def sync_external_mutations(
        self,
        entries: Optional[Iterable[Tuple[str, Tuple, int]]],
    ) -> None:
        """Fold EDB mutations applied *outside* this session into its log.

        The serving layer's workers share one epoch-versioned EDB: writes go
        through the shared store, not through :meth:`insert`/:meth:`retract`,
        and each worker session learns about them here before its next read.
        ``entries`` is the effective ``(relation, row, ±1)`` sequence — the
        shared store's delta-chain suffix — which prepared queries then fold
        into their engines' incremental maintainers exactly like native
        session mutations.  ``None`` means the span is unknown (the chain
        was compacted past this worker): the bulk sentinel is logged and
        every prepared query re-derives once.  An empty sequence is a no-op.
        """
        self._check_open()
        if entries is None:
            self._delta_log.append(_BULK_MUTATION)
            self._note_mutation()
            return
        entries = list(entries)
        if not entries:
            return
        self._delta_log.extend(
            (relation, tuple(row), sign) for relation, row, sign in entries
        )
        self._note_mutation()

    def _check_extensional(self, relation: str) -> None:
        # Both name spaces are rejected: the renamed derived relations (the
        # store's IDB marks) and their original names — an insert under an
        # original name would land in the shared store but never reach the
        # renamed relation the query actually derives into.
        if relation in self._store.idb_marks() or relation in self._derived_originals:
            raise RaqletError(
                f"relation {relation!r} is derived by a query; "
                "only extensional (EDB) relations can be mutated"
            )

    def _note_mutation(self) -> None:
        self.mutation_epoch += 1
        self._compact_delta_log()
        # Secondary engines are full materialisations; rebuild them lazily.
        if self._sqlite_executor is not None:
            self._sqlite_executor.close()
            self._sqlite_executor = None
        self._relational_database = None
        self._property_graph = None
        # Commit point of the mutation batch: standing queries catch up and
        # subscriptions/rules fire now (re-entrant mutations from rule
        # actions are absorbed by the flush's own cascade loop).
        reactive = self._reactive
        if reactive is not None and reactive.auto_flush:
            reactive.flush()

    # -- reactive subsystem --------------------------------------------------

    @property
    def reactive(self):
        """Return the session's :class:`~repro.reactive.SubscriptionManager`.

        Created on first access; holds the standing queries, subscriptions,
        reactive rules and the action registry.  With the default
        ``auto_flush=True`` every :meth:`insert` / :meth:`retract` /
        :meth:`ingest` batch flushes it at commit time.
        """
        if self._reactive is None:
            from repro.reactive.subscriptions import SubscriptionManager

            self._reactive = SubscriptionManager(self)
        return self._reactive

    def subscribe(
        self,
        query,
        callback,
        *,
        parameters: Optional[ParamValues] = None,
        **bindings: object,
    ):
        """Register a standing query: ``callback`` fires with the result-row
        delta after every mutation batch that changes the result.

        ``query`` is anything :meth:`prepare` accepts, or an existing
        :class:`PreparedQuery`.  Shorthand for
        ``session.reactive.subscribe(...)`` — see
        :class:`repro.reactive.subscriptions.SubscriptionManager`.
        """
        return self.reactive.subscribe(
            query, callback, parameters=parameters, **bindings
        )

    # -- the delta log -----------------------------------------------------

    def _register_prepared(self, prepared: PreparedQuery) -> None:
        self._all_prepared.append(prepared)

    def _unregister_prepared(self, prepared: PreparedQuery) -> None:
        """Stop tracking ``prepared`` (a replaced serving statement): its
        stale consumption position must no longer pin the delta log."""
        try:
            self._all_prepared.remove(prepared)
        except ValueError:
            pass

    def _log_position(self) -> int:
        """Return the log position representing "current as of now"."""
        return self._delta_log_offset + len(self._delta_log)

    def _fold_delta(
        self, position: int
    ) -> Optional[Tuple[Dict[str, set], Dict[str, set]]]:
        """Fold the log suffix since ``position`` into ``(added, removed)``.

        Opposite mutations of the same row cancel (each entry is an
        *effective* change, so an insert following a retract restores the
        original row exactly).  Returns ``None`` when the suffix contains a
        bulk-ingest sentinel or was compacted away — the caller must take
        the full re-derivation path.
        """
        start = position - self._delta_log_offset
        if start < 0:
            return None
        added: Dict[str, set] = {}
        removed: Dict[str, set] = {}
        for relation, row, sign in self._delta_log[start:]:
            if sign == 0:
                return None
            if sign > 0:
                rows = removed.get(relation)
                if rows is not None and row in rows:
                    rows.discard(row)
                else:
                    added.setdefault(relation, set()).add(row)
            else:
                rows = added.get(relation)
                if rows is not None and row in rows:
                    rows.discard(row)
                else:
                    removed.setdefault(relation, set()).add(row)
        return added, removed

    def _compact_delta_log(self) -> None:
        """Drop the log prefix every prepared query has already consumed."""
        if len(self._delta_log) < _DELTA_LOG_COMPACT_THRESHOLD:
            return
        end = self._log_position()
        floor = min(
            (
                prepared._delta_pos
                for prepared in self._all_prepared
                if prepared._delta_pos is not None
            ),
            default=end,
        )
        drop = floor - self._delta_log_offset
        if drop > 0:
            del self._delta_log[:drop]
            self._delta_log_offset = floor

    # -- lifecycle ---------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise RaqletError("session is closed")

    def close(self) -> None:
        """Release session resources (idempotent).

        Stores the session created are closed; a caller-supplied store
        instance is left open for its owner.
        """
        if self._closed:
            return
        self._closed = True
        if self._reactive is not None:
            self._reactive.close()
            self._reactive = None
        if self._sqlite_executor is not None:
            self._sqlite_executor.close()
            self._sqlite_executor = None
        if self._owns_store:
            self._store.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
